"""Hierarchy benchmark harness: sharded vs serial interior stepping.

The macro drives the 2000-node clustered overlay (``bullet-clustered``:
16 clusters of 125 behind a Bullet mesh of heads) and measures the
wall-clock cost of the *interior engine* — everything the clustered system
adds on top of the head mesh: per-step head-delta extraction, the cluster
dissemination stepping itself and the barrier flushes that fold delivery
windows back into the stats plane.  That is exactly the surface the shard
executors own:

* ``shard_workers=0`` — the serial mode: every cluster steps with the
  scalar :meth:`~repro.hierarchy.interior.InteriorCluster.step`, one edge
  at a time, every ``dt``;
* ``shard_workers>=2`` — the sharded mode: deltas buffer until the next
  barrier, then forked workers replay the window with the fused
  :class:`~repro.hierarchy.interior.ClusterShard` numpy stepper (one op
  sequence per tree depth across *all* owned clusters) and ship delivery
  windows back.

The head mesh's ``protocol_phase`` wall time is subtracted identically in
both modes via the same timing wrapper, so the shared protocol cost (which
neither executor owns) cancels out of the ratio.  Barrier flush time is
*included* — IPC is the sharded mode's real cost and must be paid inside
the measurement.  Each mode runs ``repeats`` times and reports its best
rate: on a loaded box a single cold run understates both modes, and the
ratio of best-of runs is the stable quantity.

``verify_exports_identical`` backs the speedup with an equivalence check:
both modes must export byte-identical results on a reduced-scale scenario
before anything is timed.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict

# Make ``src`` importable when this module is loaded without the repo-root
# conftest (e.g. ``python benchmarks/perf/run_perf.py`` on a bare checkout).
_SRC = Path(__file__).resolve().parent.parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.harness import ExperimentConfig, run_experiment  # noqa: E402
from repro.experiments.session import ExperimentSession  # noqa: E402
from repro.hierarchy.sharding import ShardedSession  # noqa: E402


@dataclass(frozen=True)
class HierarchySpec:
    """One interior-engine workload: the 2000-node clustered macro."""

    #: Overlay size (heads + interiors).
    n_overlay: int = 2000
    #: Members per cluster (2000 / 125 = 16 heads on the mesh).
    cluster_size: int = 125
    #: Shard workers for the sharded mode (the acceptance bar is >= 4).
    workers: int = 4
    #: Simulated seconds per timed run.
    duration_s: float = 30.0
    #: Step size; 0.25 puts 120 interior steps inside the run.
    dt: float = 0.25
    #: Root seed for the whole scenario.
    seed: int = 3
    #: Timed runs per mode; the best rate of each mode is compared.
    repeats: int = 3

    def scaled(self, fraction: float) -> "HierarchySpec":
        """A proportionally smaller copy (for smoke tests and quick runs)."""
        return HierarchySpec(
            n_overlay=max(100, int(self.n_overlay * fraction)),
            cluster_size=max(10, int(self.cluster_size * fraction)),
            workers=self.workers,
            duration_s=max(20.0, self.duration_s * fraction),
            dt=self.dt,
            seed=self.seed,
            repeats=self.repeats,
        )


def build_hierarchy_session(spec: HierarchySpec, workers: int):
    """The clustered session for one mode (serial when ``workers < 2``)."""
    config = ExperimentConfig(
        system="bullet-clustered",
        n_overlay=spec.n_overlay,
        cluster_size=spec.cluster_size,
        duration_s=spec.duration_s,
        dt=spec.dt,
        seed=spec.seed,
        shard_workers=workers,
    )
    if workers >= 2:
        return ShardedSession(config)
    return ExperimentSession(config)


def run_interior_rate(spec: HierarchySpec, workers: int) -> Dict[str, float]:
    """Measure the interior-engine step rate for one mode, once.

    Interior time = (system ``protocol_phase`` - head-mesh
    ``protocol_phase``) + executor flush time.  All three are wrapped with
    identical perf-counter shims in both modes, so the shim overhead and
    the shared mesh cost subtract out of the ratio symmetrically.
    """
    session = build_hierarchy_session(spec, workers)
    system = session.system
    walls = {"system": 0.0, "mesh": 0.0, "flush": 0.0}

    mesh_inner = system.mesh.protocol_phase

    def timed_mesh_phase(now: float) -> None:
        started = time.perf_counter()
        mesh_inner(now)
        walls["mesh"] += time.perf_counter() - started

    system.mesh.protocol_phase = timed_mesh_phase

    system_inner = system.protocol_phase

    def timed_system_phase(now: float) -> None:
        started = time.perf_counter()
        system_inner(now)
        walls["system"] += time.perf_counter() - started

    system.protocol_phase = timed_system_phase

    executor = system._executor
    flush_inner = executor.flush

    def timed_flush():
        started = time.perf_counter()
        reports = flush_inner()
        walls["flush"] += time.perf_counter() - started
        return reports

    executor.flush = timed_flush

    steps = int(round(spec.duration_s / session.simulator.dt))
    started = time.perf_counter()
    session.drive(spec.duration_s)
    system.receivers()  # final barrier: the last window must be paid for
    elapsed = time.perf_counter() - started
    if workers >= 2:
        system.shutdown_sharding()
    interior_s = walls["system"] - walls["mesh"] + walls["flush"]
    return {
        "steps": float(steps),
        "elapsed_s": elapsed,
        "mesh_s": walls["mesh"],
        "interior_s": interior_s,
        "interior_steps_per_s": steps / interior_s if interior_s > 0 else float("inf"),
        "steps_per_s": steps / elapsed if elapsed > 0 else float("inf"),
    }


def _best_of(spec: HierarchySpec, workers: int) -> Dict[str, float]:
    """Best interior rate over ``spec.repeats`` runs of one mode."""
    best: Dict[str, float] = {}
    for _ in range(max(1, spec.repeats)):
        result = run_interior_rate(spec, workers)
        if not best or result["interior_steps_per_s"] > best["interior_steps_per_s"]:
            best = result
    return best


def compare_hierarchy_modes(spec: HierarchySpec) -> Dict[str, Dict[str, float]]:
    """Run both interior modes on the identical scenario and report both."""
    serial = _best_of(spec, workers=0)
    sharded = _best_of(spec, workers=spec.workers)
    return {
        "spec": {key: float(value) for key, value in asdict(spec).items()},
        "serial": serial,
        "sharded": sharded,
        "summary": {
            "interior_speedup": (
                sharded["interior_steps_per_s"] / serial["interior_steps_per_s"]
            ),
            # The end-to-end rate mixes the interior engine with the head
            # mesh, which dominates at this head count; tracked, not gated.
            "end_to_end_speedup": sharded["steps_per_s"] / serial["steps_per_s"],
        },
    }


def export_fingerprint(workers: int, n_overlay: int = 36, cluster_size: int = 8,
                       duration_s: float = 60.0, seed: int = 3) -> str:
    """A canonical serialization of one reduced-scale run's exports."""
    config = ExperimentConfig(
        system="bullet-clustered",
        n_overlay=n_overlay,
        cluster_size=cluster_size,
        duration_s=duration_s,
        seed=seed,
        shard_workers=workers,
    )
    result = run_experiment(config)
    return json.dumps(
        {
            "useful": result.useful_series,
            "raw": result.raw_series,
            "from_parent": result.from_parent_series,
            "control": result.control_series,
            "duplicate_ratio": result.duplicate_ratio,
            "control_overhead_kbps": result.control_overhead_kbps,
            "bandwidth_cdf": result.bandwidth_cdf_final,
        },
        sort_keys=True,
    )


def verify_exports_identical(n_overlay: int = 36, cluster_size: int = 8,
                             duration_s: float = 60.0, seed: int = 3) -> None:
    """Assert sharded and serial modes export byte-identical results."""
    serial = export_fingerprint(0, n_overlay, cluster_size, duration_s, seed)
    sharded = export_fingerprint(4, n_overlay, cluster_size, duration_s, seed)
    if serial != sharded:
        raise SystemExit(
            "verification failed: the sharded interior executor diverged"
            " from the serial scalar stepper"
        )
