"""Hierarchy benchmark harness: sharded vs serial interior stepping.

The macro drives the 2000-node clustered overlay (``bullet-clustered``:
16 clusters of 125 behind a Bullet mesh of heads) and measures the
wall-clock cost of the *interior engine* — everything the clustered system
adds on top of the head mesh: per-step head-delta extraction, the cluster
dissemination stepping itself and the barrier flushes that fold delivery
windows back into the stats plane.  That is exactly the surface the shard
executors own:

* ``shard_workers=0`` — the serial mode: every cluster steps with the
  scalar :meth:`~repro.hierarchy.interior.InteriorCluster.step`, one edge
  at a time, every ``dt``;
* ``shard_workers>=2`` — the sharded mode: deltas buffer until the next
  barrier, then forked workers replay the window with the fused
  :class:`~repro.hierarchy.interior.ClusterShard` numpy stepper (one op
  sequence per tree depth across *all* owned clusters) and ship delivery
  windows back.

The head mesh's phase wall time is subtracted identically in both modes
via the same timing wrapper around the *active mesh driver* — the serial
:class:`~repro.core.mesh.BulletMesh` when the mesh steps on the main
process, the :class:`~repro.hierarchy.headmesh.HeadMeshCoordinator` when
the heads live in the shard workers — so the protocol cost is measured
symmetrically and cancels out of the interior ratio.  Barrier flush time
is *included* — IPC is the sharded mode's real cost and must be paid
inside the measurement.  Each mode runs ``repeats`` times and reports its
best rate: on a loaded box a single cold run understates both modes, and
the ratio of best-of runs is the stable quantity.

A second macro (:class:`HeadMeshSpec`, 10000 nodes in 200 clusters of 50)
gates the scaling recipe the shard-owned head mesh unlocks: the *combined*
interior + head step rate of the three-level, landmark-scored, fully
sharded stack (the ``scale-100000`` configuration at 10k nodes — ~4
super-heads run the mesh inside the workers, leaf heads ride cheap mid
clusters) against the head-on-main baseline (the previous architecture at
the same scale: two levels, exact per-pair latency, interiors sharded
exactly the same way, and all 200 heads stepping the full Bullet mesh
serially on the main process).  The baseline's defining cost — the head
mesh monopolizing the main process — is exactly what the candidate
removes, and all coordination IPC is paid inside the measurement.

``verify_exports_identical`` backs the speedups with an equivalence check:
both modes must export byte-identical results on a reduced-scale scenario
before anything is timed.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict

# Make ``src`` importable when this module is loaded without the repo-root
# conftest (e.g. ``python benchmarks/perf/run_perf.py`` on a bare checkout).
_SRC = Path(__file__).resolve().parent.parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.harness import ExperimentConfig, run_experiment  # noqa: E402
from repro.experiments.session import ExperimentSession  # noqa: E402
from repro.hierarchy.sharding import (  # noqa: E402
    ProcessShardExecutor,
    ShardedSession,
)


@dataclass(frozen=True)
class HierarchySpec:
    """One interior-engine workload: the 2000-node clustered macro."""

    #: Overlay size (heads + interiors).
    n_overlay: int = 2000
    #: Members per cluster (2000 / 125 = 16 heads on the mesh).
    cluster_size: int = 125
    #: Shard workers for the sharded mode (the acceptance bar is >= 4).
    workers: int = 4
    #: Simulated seconds per timed run.
    duration_s: float = 30.0
    #: Step size; 0.25 puts 120 interior steps inside the run.
    dt: float = 0.25
    #: Root seed for the whole scenario.
    seed: int = 3
    #: Timed runs per mode; the best rate of each mode is compared.
    repeats: int = 3

    def scaled(self, fraction: float) -> "HierarchySpec":
        """A proportionally smaller copy (for smoke tests and quick runs)."""
        return HierarchySpec(
            n_overlay=max(100, int(self.n_overlay * fraction)),
            cluster_size=max(10, int(self.cluster_size * fraction)),
            workers=self.workers,
            duration_s=max(20.0, self.duration_s * fraction),
            dt=self.dt,
            seed=self.seed,
            repeats=self.repeats,
        )


def build_hierarchy_session(spec: HierarchySpec, workers: int):
    """The clustered session for one mode (serial when ``workers < 2``)."""
    config = ExperimentConfig(
        system="bullet-clustered",
        n_overlay=spec.n_overlay,
        cluster_size=spec.cluster_size,
        duration_s=spec.duration_s,
        dt=spec.dt,
        seed=spec.seed,
        shard_workers=workers,
    )
    if workers >= 2:
        return ShardedSession(config)
    return ExperimentSession(config)


def _timed_session_run(session, duration_s: float) -> Dict[str, float]:
    """Drive one session to completion with symmetric phase timing.

    Three perf-counter shims, identical in every mode:

    * the system ``protocol_phase`` (head mesh + delta extraction + mid
      stepping + enqueue);
    * the *active mesh driver*'s ``protocol_phase`` — the serial
      ``BulletMesh`` when the heads step on the main process, the
      ``HeadMeshCoordinator`` (including all its worker round-trips) when
      the heads live in the shard workers;
    * the executor ``flush`` (the interior barrier, IPC included).

    Returns the raw walls plus derived per-step rates.  The session's
    workers (if any) are shut down before returning.
    """
    system = session.system
    walls = {"system": 0.0, "mesh": 0.0, "flush": 0.0}

    driver = system._mesh_driver
    mesh_inner = driver.protocol_phase

    def timed_mesh_phase(now: float) -> None:
        started = time.perf_counter()
        mesh_inner(now)
        walls["mesh"] += time.perf_counter() - started

    driver.protocol_phase = timed_mesh_phase

    system_inner = system.protocol_phase

    def timed_system_phase(now: float) -> None:
        started = time.perf_counter()
        system_inner(now)
        walls["system"] += time.perf_counter() - started

    system.protocol_phase = timed_system_phase

    executor = system._executor
    flush_inner = executor.flush

    def timed_flush():
        started = time.perf_counter()
        reports = flush_inner()
        walls["flush"] += time.perf_counter() - started
        return reports

    executor.flush = timed_flush

    steps = int(round(duration_s / session.simulator.dt))
    started = time.perf_counter()
    session.drive(duration_s)
    system.receivers()  # final barrier: the last window must be paid for
    elapsed = time.perf_counter() - started
    system.shutdown_sharding()
    interior_s = walls["system"] - walls["mesh"] + walls["flush"]
    combined_s = walls["system"] + walls["flush"]
    return {
        "steps": float(steps),
        "elapsed_s": elapsed,
        "mesh_s": walls["mesh"],
        "interior_s": interior_s,
        "combined_s": combined_s,
        "interior_steps_per_s": steps / interior_s if interior_s > 0 else float("inf"),
        "combined_steps_per_s": steps / combined_s if combined_s > 0 else float("inf"),
        "steps_per_s": steps / elapsed if elapsed > 0 else float("inf"),
    }


def run_interior_rate(spec: HierarchySpec, workers: int) -> Dict[str, float]:
    """Measure the interior-engine step rate for one mode, once.

    Interior time = (system ``protocol_phase`` - active-mesh-driver
    ``protocol_phase``) + executor flush time, all three timed by the
    shared :func:`_timed_session_run` shims, so the shim overhead and the
    mode's own mesh cost subtract out of the ratio symmetrically.
    """
    session = build_hierarchy_session(spec, workers)
    return _timed_session_run(session, spec.duration_s)


def _best_of(spec: HierarchySpec, workers: int) -> Dict[str, float]:
    """Best interior rate over ``spec.repeats`` runs of one mode."""
    best: Dict[str, float] = {}
    for _ in range(max(1, spec.repeats)):
        result = run_interior_rate(spec, workers)
        if not best or result["interior_steps_per_s"] > best["interior_steps_per_s"]:
            best = result
    return best


def compare_hierarchy_modes(spec: HierarchySpec) -> Dict[str, Dict[str, float]]:
    """Run both interior modes on the identical scenario and report both."""
    serial = _best_of(spec, workers=0)
    sharded = _best_of(spec, workers=spec.workers)
    return {
        "spec": {key: float(value) for key, value in asdict(spec).items()},
        "serial": serial,
        "sharded": sharded,
        "summary": {
            "interior_speedup": (
                sharded["interior_steps_per_s"] / serial["interior_steps_per_s"]
            ),
            # The end-to-end rate mixes the interior engine with the head
            # mesh, which dominates at this head count; tracked, not gated.
            "end_to_end_speedup": sharded["steps_per_s"] / serial["steps_per_s"],
        },
    }


@dataclass(frozen=True)
class HeadMeshSpec:
    """One head-mesh workload: the 10000-node, 200-cluster scaling macro."""

    #: Overlay size (heads + interiors).
    n_overlay: int = 10000
    #: Members per leaf cluster (10000 / 50 = 200 leaf heads).
    cluster_size: int = 50
    #: Shard workers; both modes shard interiors across this many.
    workers: int = 4
    #: Hierarchy levels of the candidate (three: mesh of ~4 super-heads).
    levels: int = 3
    #: Latency estimator of the candidate (the ``scale-100000`` setting).
    estimator: str = "landmark"
    #: Hierarchy levels of the baseline (two: all 200 heads on the mesh).
    baseline_levels: int = 2
    #: Simulated seconds per timed run.
    duration_s: float = 30.0
    #: Step size; 0.25 puts 120 protocol steps inside the run.
    dt: float = 0.25
    #: Root seed for the whole scenario.
    seed: int = 3
    #: Timed runs per mode; the best rate of each mode is compared.
    repeats: int = 2

    def scaled(self, fraction: float) -> "HeadMeshSpec":
        """A proportionally smaller copy (for smoke tests and quick runs)."""
        return HeadMeshSpec(
            n_overlay=max(400, int(self.n_overlay * fraction)),
            cluster_size=max(10, int(self.cluster_size * fraction)),
            workers=self.workers,
            levels=self.levels,
            estimator=self.estimator,
            baseline_levels=self.baseline_levels,
            duration_s=max(15.0, self.duration_s * fraction),
            dt=self.dt,
            seed=self.seed,
            repeats=self.repeats,
        )


def build_headmesh_session(spec: HeadMeshSpec, head_on_main: bool):
    """One head-mesh-macro session; interiors shard identically in both modes.

    ``head_on_main=False`` is the candidate: the ``scale-100000`` recipe at
    this node count — ``spec.levels`` hierarchy levels, ``spec.estimator``
    latency estimation, and ``ShardedSession`` putting the mesh members'
    Bullet state *and* the interiors into the forked workers with the
    ``HeadMeshCoordinator`` on the main process.

    ``head_on_main=True`` reconstructs the previous architecture as the
    baseline: two hierarchy levels (every leaf head on the mesh), exact
    per-pair latency, and the same ``ProcessShardExecutor`` forking the
    same interior partition but without head hosts — the full head mesh
    keeps stepping serially on the main process.
    """
    config = ExperimentConfig(
        system="bullet-clustered",
        n_overlay=spec.n_overlay,
        cluster_size=spec.cluster_size,
        duration_s=spec.duration_s,
        dt=spec.dt,
        seed=spec.seed,
        shard_workers=0 if head_on_main else spec.workers,
        hierarchy_levels=spec.baseline_levels if head_on_main else spec.levels,
        latency_estimator="exact" if head_on_main else spec.estimator,
    )
    if not head_on_main:
        return ShardedSession(config)
    session = ExperimentSession(config)
    system = session.system
    system._executor = ProcessShardExecutor(system._clusters, spec.workers)
    return session


def run_headmesh_rate(spec: HeadMeshSpec, head_on_main: bool) -> Dict[str, float]:
    """Measure the combined interior + head step rate for one mode, once."""
    session = build_headmesh_session(spec, head_on_main)
    return _timed_session_run(session, spec.duration_s)


def _best_headmesh(spec: HeadMeshSpec, head_on_main: bool) -> Dict[str, float]:
    """Best combined rate over ``spec.repeats`` runs of one mode."""
    best: Dict[str, float] = {}
    for _ in range(max(1, spec.repeats)):
        result = run_headmesh_rate(spec, head_on_main)
        if not best or result["combined_steps_per_s"] > best["combined_steps_per_s"]:
            best = result
    return best


def compare_headmesh_modes(spec: HeadMeshSpec) -> Dict[str, Dict[str, float]]:
    """Run head-on-main and fully sharded modes; report the combined ratio."""
    head_on_main = _best_headmesh(spec, head_on_main=True)
    sharded = _best_headmesh(spec, head_on_main=False)
    return {
        "spec": {
            key: value if isinstance(value, str) else float(value)
            for key, value in asdict(spec).items()
        },
        "head_on_main": head_on_main,
        "sharded": sharded,
        "summary": {
            "headmesh_speedup": (
                sharded["combined_steps_per_s"]
                / head_on_main["combined_steps_per_s"]
            ),
            # The mesh phase alone, for trajectory tracking: the coordinator
            # round-trips are inside the sharded number by construction.
            "mesh_phase_speedup": (
                head_on_main["mesh_s"] / sharded["mesh_s"]
                if sharded["mesh_s"] > 0
                else float("inf")
            ),
            "end_to_end_speedup": (
                sharded["steps_per_s"] / head_on_main["steps_per_s"]
            ),
        },
    }


def export_fingerprint(workers: int, n_overlay: int = 36, cluster_size: int = 8,
                       duration_s: float = 60.0, seed: int = 3) -> str:
    """A canonical serialization of one reduced-scale run's exports."""
    config = ExperimentConfig(
        system="bullet-clustered",
        n_overlay=n_overlay,
        cluster_size=cluster_size,
        duration_s=duration_s,
        seed=seed,
        shard_workers=workers,
    )
    result = run_experiment(config)
    return json.dumps(
        {
            "useful": result.useful_series,
            "raw": result.raw_series,
            "from_parent": result.from_parent_series,
            "control": result.control_series,
            "duplicate_ratio": result.duplicate_ratio,
            "control_overhead_kbps": result.control_overhead_kbps,
            "bandwidth_cdf": result.bandwidth_cdf_final,
        },
        sort_keys=True,
    )


def verify_exports_identical(n_overlay: int = 36, cluster_size: int = 8,
                             duration_s: float = 60.0, seed: int = 3) -> None:
    """Assert sharded and serial modes export byte-identical results."""
    serial = export_fingerprint(0, n_overlay, cluster_size, duration_s, seed)
    sharded = export_fingerprint(4, n_overlay, cluster_size, duration_s, seed)
    if serial != sharded:
        raise SystemExit(
            "verification failed: the sharded interior executor diverged"
            " from the serial scalar stepper"
        )
