"""Gate a ``BENCH_*.json`` perf report against the committed baseline.

Usage (what the CI ``perf`` and ``perf-protocol`` jobs run)::

    python benchmarks/perf/check_regression.py \
        benchmarks/perf/baseline.json BENCH_PERF.json

Every macro entry present in the *current* report is gated; a report may
carry one suite (``--suite churn`` / ``--suite protocol`` runners) or both:

* ``macro_churn_step_rate`` — the incremental bandwidth-allocation engine's
  end-to-end speedup on the flow-churn workload;
* ``macro_protocol_step_rate`` — the incremental protocol plane's
  refresh + RanSub step-rate speedup on the 500-node Bullet overlay;
* ``macro_routing_discovery`` — the routing engine's discovery-spike
  path-resolution speedup over per-pair networkx at the 500-node scale;
* ``macro_step_core`` — the quiescence-aware step engine's core speedup
  (allocation + transport + injector + sampling, ``protocol_phase``
  excluded symmetrically) on the 500-node flash-crowd join macro;
* ``macro_hierarchy_step_rate`` — the sharded interior executor's speedup
  over serial scalar stepping on the 2000-node ``bullet-clustered`` macro
  (head-mesh cost excluded symmetrically, barrier IPC included);
* ``macro_headmesh_step_rate`` — the combined interior + head step-rate
  speedup of the three-level, landmark-scored, shard-owned head mesh over
  the two-level head-on-main architecture on the 10000-node macro
  (coordination IPC included).

For each gated entry, two checks run in order:

1. **speedup floor** — the incremental mode must beat the from-scratch mode
   by at least ``--min-speedup`` (default 3.0), the headline acceptance bar
   for both engines;
2. **speedup regression** — the measured speedup must not fall more than
   ``--threshold`` (default 25%) below the committed baseline's speedup.

Only *ratios* are gated by default: absolute steps/second track the host
machine, so baselines recorded on one box would misfire on another.  Pass
``--check-absolute`` to additionally gate the incremental steps/second
against the baseline (useful on dedicated, stable perf hardware).

When a slowdown is intentional, regenerate and commit the baseline in the
same PR::

    python benchmarks/perf/run_perf.py --suite all \
        --out benchmarks/perf/baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Gated macro entries: result key -> (speedup field, absolute-rate field).
GATES = {
    "macro_churn_step_rate": ("speedup", "incremental_steps_per_s"),
    "macro_protocol_step_rate": (
        "protocol_speedup",
        "incremental_protocol_steps_per_s",
    ),
    "macro_routing_discovery": ("speedup", "engine_pairs_per_s"),
    "macro_step_core": ("step_core_speedup", "engine_core_steps_per_s"),
    "macro_hierarchy_step_rate": (
        "interior_speedup",
        "sharded_interior_steps_per_s",
    ),
    "macro_headmesh_step_rate": (
        "headmesh_speedup",
        "sharded_combined_steps_per_s",
    ),
}


def _load(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except (OSError, ValueError) as error:
        raise SystemExit(f"cannot read perf report {path!r}: {error}")


def _results(report: dict, path: str) -> dict:
    results = report.get("results")
    if not isinstance(results, dict):
        raise SystemExit(f"{path!r} is not a perf report (missing results)")
    return results


def _gate_entry(name: str, baseline: dict, current: dict, args) -> list:
    speedup_field, rate_field = GATES[name]
    speedup = current[speedup_field]
    base_speedup = baseline[speedup_field]
    floor = base_speedup * (1.0 - args.threshold)
    print(f"{name}: speedup {speedup:.2f}x"
          f" (baseline {base_speedup:.2f}x, regression floor {floor:.2f}x,"
          f" hard floor {args.min_speedup:.2f}x)")

    failures = []
    if speedup < args.min_speedup:
        failures.append(
            f"{name}: speedup {speedup:.2f}x is below the hard floor"
            f" {args.min_speedup:.2f}x"
        )
    if speedup < floor:
        failures.append(
            f"{name}: speedup {speedup:.2f}x regressed more than"
            f" {args.threshold:.0%} vs baseline {base_speedup:.2f}x"
        )
    if args.check_absolute:
        rate = current[rate_field]
        base_rate = baseline[rate_field]
        rate_floor = base_rate * (1.0 - args.threshold)
        print(f"{name}: incremental rate {rate:.2f} steps/s"
              f" (baseline {base_rate:.2f}, floor {rate_floor:.2f})")
        if rate < rate_floor:
            failures.append(
                f"{name}: incremental step rate {rate:.2f} steps/s regressed"
                f" more than {args.threshold:.0%} vs baseline {base_rate:.2f}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly measured BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional regression vs baseline")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="hard floor for incremental/from-scratch speedup")
    parser.add_argument("--check-absolute", action="store_true",
                        help="also gate absolute steps/s against the baseline")
    args = parser.parse_args(argv)

    baseline = _results(_load(args.baseline), args.baseline)
    current = _results(_load(args.current), args.current)

    gated = [name for name in GATES if name in current]
    if not gated:
        raise SystemExit(
            f"{args.current!r} carries no gated macro entry"
            f" (expected one of {', '.join(GATES)})"
        )

    failures = []
    for name in gated:
        if name not in baseline:
            raise SystemExit(
                f"baseline {args.baseline!r} has no {name!r} entry; regenerate"
                " it with run_perf.py --suite all and commit it in this PR"
            )
        failures.extend(_gate_entry(name, baseline[name], current[name], args))

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
