"""Gate a ``BENCH_*.json`` perf report against the committed baseline.

Usage (what the CI ``perf`` job runs)::

    python benchmarks/perf/check_regression.py \
        benchmarks/perf/baseline.json BENCH_PERF.json

Checks, in order:

1. **speedup floor** — the incremental engine must beat the from-scratch
   solver by at least ``--min-speedup`` (default 3.0) on the churn macro
   workload, the headline acceptance bar for the engine;
2. **speedup regression** — the measured speedup must not fall more than
   ``--threshold`` (default 25%) below the committed baseline's speedup.

Only the *ratio* is gated by default: absolute steps/second track the host
machine, so baselines recorded on one box would misfire on another.  Pass
``--check-absolute`` to additionally gate the incremental steps/second
against the baseline (useful on dedicated, stable perf hardware).

When a slowdown is intentional, regenerate and commit the baseline in the
same PR: ``python benchmarks/perf/run_perf.py --out benchmarks/perf/baseline.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _load(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except (OSError, ValueError) as error:
        raise SystemExit(f"cannot read perf report {path!r}: {error}")


def _macro(report: dict, path: str) -> dict:
    try:
        return report["results"]["macro_churn_step_rate"]
    except (KeyError, TypeError):
        raise SystemExit(f"{path!r} is not a perf report (missing macro results)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly measured BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional regression vs baseline")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="hard floor for incremental/from-scratch speedup")
    parser.add_argument("--check-absolute", action="store_true",
                        help="also gate absolute steps/s against the baseline")
    args = parser.parse_args(argv)

    baseline = _macro(_load(args.baseline), args.baseline)
    current = _macro(_load(args.current), args.current)

    speedup = current["speedup"]
    base_speedup = baseline["speedup"]
    floor = base_speedup * (1.0 - args.threshold)
    print(f"macro churn step-rate: speedup {speedup:.2f}x"
          f" (baseline {base_speedup:.2f}x, regression floor {floor:.2f}x,"
          f" hard floor {args.min_speedup:.2f}x)")

    failures = []
    if speedup < args.min_speedup:
        failures.append(
            f"speedup {speedup:.2f}x is below the hard floor {args.min_speedup:.2f}x"
        )
    if speedup < floor:
        failures.append(
            f"speedup {speedup:.2f}x regressed more than"
            f" {args.threshold:.0%} vs baseline {base_speedup:.2f}x"
        )
    if args.check_absolute:
        rate = current["incremental_steps_per_s"]
        base_rate = baseline["incremental_steps_per_s"]
        rate_floor = base_rate * (1.0 - args.threshold)
        print(f"incremental step rate: {rate:.2f} steps/s"
              f" (baseline {base_rate:.2f}, floor {rate_floor:.2f})")
        if rate < rate_floor:
            failures.append(
                f"incremental step rate {rate:.2f} steps/s regressed more than"
                f" {args.threshold:.0%} vs baseline {base_rate:.2f}"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
