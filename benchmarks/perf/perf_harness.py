"""Shared workload builders for the performance suite.

The macro benchmark drives :class:`~repro.network.simulator.NetworkSimulator`
end-to-end on a *flow-churn* workload: a large transit-stub topology carrying
constant-bit-rate flows between random client pairs, with bursts of flows
torn down and replaced while the simulation runs — the flow-level picture of
an overlay under heavy join/leave churn.  Demands are application-limited
(no TFRC), so between churn bursts no rate cap changes and the incremental
allocation engine can reuse whole allocations; every burst dirties the
affected region and forces a real re-solve.  The from-scratch reference mode
(``incremental=False``) re-solves everything every step, which is what the
simulator always did before the engine existed.

The same builders back the pytest-benchmark micro-benchmarks, the
``run_perf.py`` CI runner and the equivalence tests, so the measured and the
verified workloads are identical.
"""

from __future__ import annotations

import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, List, Tuple

# Make ``src`` importable when this module is loaded without the repo-root
# conftest (e.g. ``python benchmarks/perf/run_perf.py`` on a bare checkout).
_SRC = Path(__file__).resolve().parent.parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.network.simulator import NetworkSimulator  # noqa: E402
from repro.experiments.workloads import scaled_topology_config  # noqa: E402
from repro.network.fairshare import AllocationRequest  # noqa: E402
from repro.topology.generator import generate_topology  # noqa: E402
from repro.topology.links import BandwidthClass  # noqa: E402
from repro.util.rng import SeededRng  # noqa: E402


@dataclass(frozen=True)
class ChurnSpec:
    """One flow-churn workload: topology scale, flow population and churn."""

    #: Client-host budget the topology is sized for (overlay scale).
    n_overlay: int = 400
    #: Long-lived CBR flows kept alive between random client pairs.
    n_flows: int = 1200
    #: Per-flow application demand in Kbps.
    demand_kbps: float = 300.0
    #: Steps between churn bursts (1 = churn every step).
    burst_every: int = 5
    #: Flows replaced per burst.
    burst_size: int = 8
    #: Root seed for topology, placement and churn draws.
    seed: int = 1

    def scaled(self, fraction: float) -> "ChurnSpec":
        """A proportionally smaller copy (for smoke tests and quick runs)."""
        return ChurnSpec(
            n_overlay=max(10, int(self.n_overlay * fraction)),
            n_flows=max(20, int(self.n_flows * fraction)),
            demand_kbps=self.demand_kbps,
            burst_every=self.burst_every,
            burst_size=max(2, int(self.burst_size * fraction) or 2),
            seed=self.seed,
        )


def build_micro_problem(n_flows: int, n_links: int, seed: int = 7):
    """Synthetic multi-bottleneck solver input for the micro-benchmarks.

    Shared by ``test_perf.py`` and ``run_perf.py`` so the problem CI times is
    the one the benchmarks exercise.  Returns ``(requests, capacities)``.
    """
    rng = SeededRng(seed, "perf-micro")
    capacities = {link: 500.0 + 50.0 * (link % 17) for link in range(n_links)}
    requests = [
        AllocationRequest(
            flow_key=index,
            link_indices=tuple(rng.sample(range(n_links), 4)),
            cap_kbps=200.0 + 10.0 * (index % 23),
        )
        for index in range(n_flows)
    ]
    return requests, capacities


def build_churn_simulator(
    spec: ChurnSpec, incremental: bool
) -> Tuple[NetworkSimulator, Callable[[float], None]]:
    """Build the simulator plus the churn protocol phase for ``spec``.

    Returns ``(simulator, protocol_phase)``; pass the phase to
    ``simulator.run_steps``.  All randomness is seeded from ``spec.seed``, so
    the incremental and from-scratch runs see byte-identical workloads.
    """
    topology = generate_topology(
        scaled_topology_config(spec.n_overlay, BandwidthClass.MEDIUM, spec.seed)
    )
    simulator = NetworkSimulator(
        topology,
        dt=1.0,
        seed=spec.seed,
        congestion_loss_rate=0.0,
        incremental=incremental,
    )
    clients = topology.client_nodes
    pair_rng = SeededRng(spec.seed, "churn-pairs")

    def open_flow():
        src, dst = pair_rng.sample(clients, 2)
        return simulator.create_flow(
            src, dst, demand_kbps=spec.demand_kbps, use_tfrc=False
        )

    flows: List = [open_flow() for _ in range(spec.n_flows)]
    step_counter = [0]

    def protocol_phase(now: float) -> None:
        step_counter[0] += 1
        if step_counter[0] % spec.burst_every:
            return
        for _ in range(min(spec.burst_size, len(flows))):
            victim = flows.pop(0)
            simulator.remove_flow(victim)
            flows.append(open_flow())

    return simulator, protocol_phase


def run_step_rate(
    spec: ChurnSpec, incremental: bool, steps: int, warmup: int = 5
) -> Dict[str, float]:
    """Measure end-to-end steps/second on the churn workload.

    The build and ``warmup`` steps are excluded from the timed window so the
    measurement captures the steady churn regime, not topology generation.
    """
    simulator, phase = build_churn_simulator(spec, incremental)
    simulator.run_steps(warmup, phase)
    started = time.perf_counter()
    simulator.run_steps(steps, phase)
    elapsed = time.perf_counter() - started
    stats = simulator.allocation_stats
    allocation = simulator.allocation_engine.allocation
    return {
        "steps": float(steps),
        "elapsed_s": elapsed,
        "steps_per_s": steps / elapsed if elapsed > 0 else float("inf"),
        "clean_fraction": stats.clean_fraction,
        "solve_fraction": stats.solve_fraction,
        "flows_tracked": float(stats.flows_tracked),
        "allocation_total_kbps": float(sum(allocation.values())),
    }


def compare_modes(spec: ChurnSpec, steps: int) -> Dict[str, Dict[str, float]]:
    """Run both solver modes on the identical workload and report both."""
    from_scratch = run_step_rate(spec, incremental=False, steps=steps)
    incremental = run_step_rate(spec, incremental=True, steps=steps)
    speedup = incremental["steps_per_s"] / from_scratch["steps_per_s"]
    return {
        "spec": {key: float(value) for key, value in asdict(spec).items()},
        "from_scratch": from_scratch,
        "incremental": incremental,
        "summary": {
            "speedup": speedup,
            "clean_fraction": incremental["clean_fraction"],
            "solve_fraction": incremental["solve_fraction"],
        },
    }


def lockstep_allocations(
    spec: ChurnSpec, steps: int
) -> List[Tuple[List[float], List[float]]]:
    """Step both modes side by side; returns per-step allocation pairs.

    Used by the equivalence tests: the incremental engine must agree with the
    from-scratch solve at every step (up to float associativity, since the
    incremental mode solves affected regions in isolation).  Allocations are
    listed in flow-creation order — flow ids differ between the two
    simulators (they come from a process-global counter) but the creation
    sequences are identical, so positions correspond.
    """
    sim_inc, phase_inc = build_churn_simulator(spec, incremental=True)
    sim_ref, phase_ref = build_churn_simulator(spec, incremental=False)
    snapshots: List[Tuple[List[float], List[float]]] = []
    for _ in range(steps):
        sim_inc.begin_step()
        sim_ref.begin_step()
        snapshots.append(
            (
                [flow.allocated_kbps for flow in sim_inc.flows],
                [flow.allocated_kbps for flow in sim_ref.flows],
            )
        )
        phase_inc(sim_inc.time)
        phase_ref(sim_ref.time)
        sim_inc.end_step()
        sim_ref.end_step()
    return snapshots
