"""Routing-plane benchmark harness: discovery-spike path resolution at scale.

Underlay path computation sits under everything in this reproduction — the
control channel, TFRC flows, OMBT probes and tree construction all cross the
fixed routes of Section 4.1.  The worst case is the flash-crowd join: a wave
of new participants whose peer discovery suddenly asks for thousands of
paths between pairs nobody resolved before.

Two workloads measure what the routing engine owns:

* **discovery spike** (the gated metric) — on a topology sized for a
  500-node overlay, a batch of joiners each resolves paths to and from a
  random peer set.  Legacy mode pays one per-pair networkx
  ``bidirectional_dijkstra`` per new pair; engine mode pre-warms the
  standing members' shortest-path trees at construction time (outside the
  timed spike, exactly as the experiment session does) and then resolves
  the spike through one tree solve per joiner plus O(hops) extractions;
* **flash-crowd join macro** — the real ``flash-crowd`` scale scenario at
  reduced size, engine on vs off, end-to-end wall clock (reported for
  trajectory tracking, not gated: it mixes routing with everything else).

``verify_routes_identical`` backs the speedup with an equivalence check:
both modes must resolve byte-identical paths, delays, losses and
bottlenecks — including after interleaved loss/capacity mutations, which
the engine absorbs with epoch-tagged lazy attribute refreshes instead of
cache flushes.
"""

from __future__ import annotations

import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Tuple

# Make ``src`` importable when this module is loaded without the repo-root
# conftest (e.g. ``python benchmarks/perf/run_perf.py`` on a bare checkout).
_SRC = Path(__file__).resolve().parent.parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.workloads import (  # noqa: E402
    scaled_topology_config,
    scenario_config,
)
from repro.topology.generator import (  # noqa: E402
    generate_topology,
    place_overlay_participants,
)
from repro.topology.graph import Topology  # noqa: E402
from repro.topology.links import BandwidthClass  # noqa: E402
from repro.util.rng import SeededRng  # noqa: E402


@dataclass(frozen=True)
class RoutingSpec:
    """One discovery-spike workload over a 500-overlay transit-stub topology."""

    #: Overlay size the topology is scaled for (acceptance measures at 500).
    n_overlay: int = 500
    #: Joiners arriving in the spike.
    joiners: int = 50
    #: Peers each joiner discovers (paths resolve in both directions).
    peers_per_joiner: int = 40
    #: Root seed for topology, placement and peer draws.
    seed: int = 1

    def scaled(self, fraction: float) -> "RoutingSpec":
        """A proportionally smaller copy (for smoke tests and quick runs)."""
        return RoutingSpec(
            n_overlay=max(24, int(self.n_overlay * fraction)),
            joiners=max(4, int(self.joiners * fraction)),
            peers_per_joiner=max(4, int(self.peers_per_joiner * fraction)),
            seed=self.seed,
        )


def build_spike(
    spec: RoutingSpec,
) -> Tuple[Topology, List[int], List[int], List[Tuple[int, int]]]:
    """Build the spike scenario: topology, members, joiners and pair set."""
    config = scaled_topology_config(spec.n_overlay, BandwidthClass.MEDIUM, spec.seed)
    topology = generate_topology(config)
    participants = place_overlay_participants(topology, spec.n_overlay, seed=spec.seed)
    rng = SeededRng(spec.seed, "discovery-spike")
    joiners = rng.sample(participants, min(spec.joiners, len(participants) // 2))
    joiner_set = set(joiners)
    members = [node for node in participants if node not in joiner_set]
    pairs: List[Tuple[int, int]] = []
    for joiner in joiners:
        for peer in rng.sample(members, min(spec.peers_per_joiner, len(members))):
            pairs.append((joiner, peer))
            pairs.append((peer, joiner))
    return topology, members, joiners, pairs


def resolve_spike_rate(spec: RoutingSpec, use_engine: bool) -> Dict[str, float]:
    """Time resolving the spike's pair set in one routing mode.

    Engine mode warms the standing members' trees first — construction-time
    work the session performs before the stream starts — and reports that
    separately; the timed spike covers the joiner tree solves plus every
    pair resolution, which is what lands inside the step loop without the
    engine.
    """
    topology, members, joiners, pairs = build_spike(spec)
    topology.use_routing_engine = use_engine
    warm_s = 0.0
    if use_engine:
        started = time.perf_counter()
        topology.warm_routes(members)
        warm_s = time.perf_counter() - started
    path = topology.path
    started = time.perf_counter()
    if use_engine:
        topology.warm_routes(joiners)
    for src, dst in pairs:
        path(src, dst)
    elapsed = time.perf_counter() - started
    return {
        "pairs": float(len(pairs)),
        "elapsed_s": elapsed,
        "pairs_per_s": len(pairs) / elapsed if elapsed > 0 else float("inf"),
        "construction_warm_s": warm_s,
    }


def compare_routing_modes(spec: RoutingSpec) -> Dict[str, Dict[str, float]]:
    """Run the spike in both modes on the identical scenario."""
    legacy = resolve_spike_rate(spec, use_engine=False)
    engine = resolve_spike_rate(spec, use_engine=True)
    return {
        "spec": {key: float(value) for key, value in asdict(spec).items()},
        "legacy": legacy,
        "engine": engine,
        "summary": {
            "speedup": engine["pairs_per_s"] / legacy["pairs_per_s"],
        },
    }


@dataclass(frozen=True)
class FlashCrowdSpec:
    """A reduced flash-crowd join scenario for the end-to-end macro."""

    n_overlay: int = 100
    joins: int = 200
    duration_s: float = 60.0
    seed: int = 1

    def scaled(self, fraction: float) -> "FlashCrowdSpec":
        """A proportionally smaller copy (for smoke tests and quick runs)."""
        return FlashCrowdSpec(
            n_overlay=max(12, int(self.n_overlay * fraction)),
            joins=max(6, int(self.joins * fraction)),
            duration_s=max(20.0, self.duration_s * fraction),
            seed=self.seed,
        )


def run_flash_crowd(spec: FlashCrowdSpec, routing_engine: bool) -> Dict[str, float]:
    """Wall-clock one flash-crowd join run in the requested routing mode."""
    from repro.experiments.harness import run_experiment

    config = scenario_config(
        "flash-crowd",
        n_overlay=spec.n_overlay,
        churn_joins=spec.joins,
        duration_s=spec.duration_s,
        seed=spec.seed,
        routing_engine=routing_engine,
    )
    started = time.perf_counter()
    run_experiment(config)
    elapsed = time.perf_counter() - started
    steps = config.duration_s / config.dt
    return {
        "elapsed_s": elapsed,
        "steps_per_s": steps / elapsed if elapsed > 0 else float("inf"),
    }


def compare_flash_crowd(spec: FlashCrowdSpec) -> Dict[str, Dict[str, float]]:
    """Run the flash-crowd macro with the engine off, then on."""
    legacy = run_flash_crowd(spec, routing_engine=False)
    engine = run_flash_crowd(spec, routing_engine=True)
    return {
        "spec": {key: float(value) for key, value in asdict(spec).items()},
        "legacy": legacy,
        "engine": engine,
        "summary": {
            "speedup": engine["steps_per_s"] / legacy["steps_per_s"],
        },
    }


def verify_routes_identical(spec: RoutingSpec = RoutingSpec(n_overlay=60, joiners=8,
                                                            peers_per_joiner=10)) -> None:
    """Assert both modes resolve identical routes, attributes included.

    Resolves the spike pair set in both modes, then applies interleaved
    ``set_link_loss`` / ``set_link_capacity`` mutations and re-resolves:
    the engine must serve the updated attributes from its epoch-refreshed
    caches exactly as the legacy mode recomputes them from scratch.
    """
    topology_engine, _, _, pairs = build_spike(spec)
    topology_legacy, _, _, _ = build_spike(spec)
    topology_legacy.use_routing_engine = False

    def check(label: str) -> None:
        for src, dst in pairs:
            a = topology_engine.path(src, dst)
            b = topology_legacy.path(src, dst)
            if (a.links, a.delay_s, a.loss_rate, a.bottleneck_kbps) != (
                b.links, b.delay_s, b.loss_rate, b.bottleneck_kbps
            ):
                raise SystemExit(
                    f"verification failed ({label}): engine route {src}->{dst}"
                    " diverged from the networkx reference"
                )

    check("initial")
    for topology in (topology_engine, topology_legacy):
        for index in range(0, topology.num_links, 5):
            topology.set_link_loss(index, 0.04)
        for index in range(0, topology.num_links, 7):
            topology.set_link_capacity(index, 999.0)
    check("after loss/capacity mutations")
    solves_before = topology_engine.routing_stats.dijkstra_runs
    for src, dst in pairs:
        topology_engine.path(src, dst)
    if topology_engine.routing_stats.dijkstra_runs != solves_before:
        raise SystemExit(
            "verification failed: attribute mutations triggered route"
            " re-solves (the split route/attribute cache is broken)"
        )
