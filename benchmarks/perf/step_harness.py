"""Step-core benchmark harness: the quiescence-aware engine's gated macro.

The macro drives the 500-node flash-crowd join scenario (a 100-node Bullet
overlay absorbing 400 mid-run joiners) and measures the wall-clock cost of
the *step core* — everything in a session step **except** the system's
``protocol_phase``: the incremental bandwidth allocation (``begin_step``),
the transport plane (``end_step``: loss draws, TFRC feedback, rate
evolution, delivery bookkeeping), the failure/join injector scan and the
session's sampling/observer plumbing.  That is exactly the surface the
``repro.sched`` engine owns:

* ``step_engine=False`` — the legacy loop: every flow's TFRC state is
  polled and updated scalar-by-scalar every ``dt``, every allocation
  request is resubmitted, the injector scans its event lists every step;
* ``step_engine=True`` — wakeup-driven quiescence (idle flows, quiet
  timers and empty injectors are skipped) plus numpy-vectorized batches
  for the remaining per-flow feedback and rate-evolution work.

``protocol_phase`` wall time is subtracted identically in both modes via
the same timing wrapper, so the shared protocol-plane cost (peer handlers,
RanSub, control pump — owned and gated by PR 4's engine) cancels out of
the ratio.  The end-to-end speedup is reported alongside for trajectory
tracking, not gated: the step mixes both planes and the protocol plane
dominates once the core is fast.

``verify_exports_identical`` backs the speedup with an equivalence check:
both modes must export byte-identical results on a reduced-scale scenario.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict

# Make ``src`` importable when this module is loaded without the repo-root
# conftest (e.g. ``python benchmarks/perf/run_perf.py`` on a bare checkout).
_SRC = Path(__file__).resolve().parent.parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.harness import run_experiment  # noqa: E402
from repro.experiments.session import ExperimentSession  # noqa: E402
from repro.experiments.workloads import scenario_config  # noqa: E402


@dataclass(frozen=True)
class StepSpec:
    """One step-core workload: the flash-crowd join macro."""

    #: Initial overlay size (the scenario grows it by ``joins``).
    n_overlay: int = 100
    #: Mid-run joiners (the 500-node acceptance scale is 100 + 400).
    joins: int = 400
    #: Simulated seconds (also the number of timed steps at dt=1).
    duration_s: float = 60.0
    #: When the join window opens / how long it lasts.
    join_start_s: float = 10.0
    join_duration_s: float = 30.0
    #: Root seed for the whole scenario.
    seed: int = 1

    def scaled(self, fraction: float) -> "StepSpec":
        """A proportionally smaller copy (for smoke tests and quick runs)."""
        return StepSpec(
            n_overlay=max(20, int(self.n_overlay * fraction)),
            joins=max(10, int(self.joins * fraction)),
            duration_s=max(20.0, self.duration_s * fraction),
            join_start_s=self.join_start_s * fraction,
            join_duration_s=max(10.0, self.join_duration_s * fraction),
            seed=self.seed,
        )


def build_step_session(spec: StepSpec, engine: bool) -> ExperimentSession:
    """The flash-crowd session for one mode of the spec's scenario."""
    config = scenario_config(
        "flash-crowd",
        n_overlay=spec.n_overlay,
        churn_joins=spec.joins,
        duration_s=spec.duration_s,
        join_start_s=spec.join_start_s,
        join_duration_s=spec.join_duration_s,
        sample_interval_s=5.0,
        step_engine=engine,
        seed=spec.seed,
    )
    return ExperimentSession(config)


def run_step_core_rate(spec: StepSpec, engine: bool) -> Dict[str, float]:
    """Measure step-core and end-to-end step rates for one mode.

    The system's ``protocol_phase`` is wrapped with an identical
    perf-counter shim in both modes, so its wall time (and the shim's own
    overhead) subtracts out of the core measurement symmetrically.
    """
    session = build_step_session(spec, engine)
    protocol_wall = [0.0]
    inner = session.system.protocol_phase

    def timed_protocol_phase(now: float) -> None:
        started = time.perf_counter()
        inner(now)
        protocol_wall[0] += time.perf_counter() - started

    session.system.protocol_phase = timed_protocol_phase
    steps = int(round(spec.duration_s / session.simulator.dt))
    started = time.perf_counter()
    for _ in range(steps):
        session.step()
    elapsed = time.perf_counter() - started
    core_s = elapsed - protocol_wall[0]
    result = {
        "steps": float(steps),
        "elapsed_s": elapsed,
        "protocol_s": protocol_wall[0],
        "core_s": core_s,
        "core_steps_per_s": steps / core_s if core_s > 0 else float("inf"),
        "steps_per_s": steps / elapsed if elapsed > 0 else float("inf"),
    }
    if session.step_engine is not None:
        for key, value in session.step_engine.describe().items():
            result[f"engine_{key}"] = float(value)
    return result


def compare_step_modes(spec: StepSpec) -> Dict[str, Dict[str, float]]:
    """Run both step-core modes on the identical scenario and report both."""
    legacy = run_step_core_rate(spec, engine=False)
    engine = run_step_core_rate(spec, engine=True)
    return {
        "spec": {key: float(value) for key, value in asdict(spec).items()},
        "legacy": legacy,
        "engine": engine,
        "summary": {
            "core_speedup": engine["core_steps_per_s"] / legacy["core_steps_per_s"],
            "end_to_end_speedup": engine["steps_per_s"] / legacy["steps_per_s"],
        },
    }


def export_fingerprint(engine: bool, n_overlay: int = 30, joins: int = 30,
                       duration_s: float = 60.0, seed: int = 5) -> str:
    """A canonical serialization of one reduced-scale run's exports."""
    config = scenario_config(
        "flash-crowd",
        n_overlay=n_overlay,
        churn_joins=joins,
        duration_s=duration_s,
        join_start_s=10.0,
        join_duration_s=20.0,
        sample_interval_s=5.0,
        step_engine=engine,
        seed=seed,
    )
    result = run_experiment(config)
    return json.dumps(
        {
            "useful": result.useful_series,
            "raw": result.raw_series,
            "from_parent": result.from_parent_series,
            "control": result.control_series,
            "duplicate_ratio": result.duplicate_ratio,
            "control_overhead_kbps": result.control_overhead_kbps,
            "bandwidth_cdf": result.bandwidth_cdf_final,
        },
        sort_keys=True,
    )


def verify_exports_identical(n_overlay: int = 30, joins: int = 30,
                             duration_s: float = 60.0, seed: int = 5) -> None:
    """Assert both step-core modes export byte-identical results."""
    engine = export_fingerprint(True, n_overlay, joins, duration_s, seed)
    legacy = export_fingerprint(False, n_overlay, joins, duration_s, seed)
    if engine != legacy:
        raise SystemExit(
            "verification failed: the quiescence-aware step core diverged"
            " from the legacy every-node-every-step loop"
        )
