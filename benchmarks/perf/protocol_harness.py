"""Protocol-plane benchmark harness: refresh + RanSub step rate at scale.

The macro benchmark drives a full Bullet session — the real mesh, control
channel, RanSub epochs and Bloom-refresh machinery — and measures the
wall-clock cost of the *protocol plane*: the timer-driven refresh and epoch
generation plus the control-channel pump and message handlers
(:meth:`BulletMesh.protocol_plane_seconds`).  The bandwidth solver runs in
its cheap ``single_pass`` mode so the measurement isolates the protocol
work this engine owns rather than re-measuring PR 3's allocation engine.

Two modes run on the byte-identical scenario:

* ``incremental=False`` — the pre-incremental hot path: every refresh
  rebuilds the node's Bloom filter from the packet store, every ticket is
  re-sketched from scratch, and every refresh install rescans the sender's
  holdings;
* ``incremental=True`` — versioned mutate-in-place Bloom/working-set
  maintenance, frozen snapshot reuse, and skip-unchanged refresh installs.

``verify_exports_identical`` backs the speedup with an equivalence check:
both modes must export byte-identical results on a reduced-scale scenario.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict

# Make ``src`` importable when this module is loaded without the repo-root
# conftest (e.g. ``python benchmarks/perf/run_perf.py`` on a bare checkout).
_SRC = Path(__file__).resolve().parent.parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.harness import ExperimentConfig, run_experiment  # noqa: E402
from repro.experiments.session import ExperimentSession  # noqa: E402


@dataclass(frozen=True)
class ProtocolSpec:
    """One protocol-plane workload: a steady-state Bullet overlay."""

    #: Overlay size (the acceptance target measures at 500).
    n_overlay: int = 500
    #: Timed steps per mode.
    steps: int = 25
    #: Steps run before timing so the measurement captures the steady-state
    #: refresh/RanSub regime: peer discovery must have settled (the first
    #: epochs create thousands of fresh peer pairs whose underlay paths the
    #: simulator computes once, a shared cost that is not protocol work) and
    #: working sets must be at their full windows (what makes the from-scratch
    #: rebuilds expensive in the first place).
    warmup_steps: int = 60
    #: Root seed for the whole scenario.
    seed: int = 1

    def scaled(self, fraction: float) -> "ProtocolSpec":
        """A proportionally smaller copy (for smoke tests and quick runs)."""
        return ProtocolSpec(
            n_overlay=max(12, int(self.n_overlay * fraction)),
            steps=max(5, int(self.steps * fraction)),
            warmup_steps=max(3, int(self.warmup_steps * fraction)),
            seed=self.seed,
        )


def build_protocol_session(spec: ProtocolSpec, incremental: bool) -> ExperimentSession:
    """A Bullet session over the spec's scenario, in the requested mode."""
    config = ExperimentConfig(
        system="bullet",
        n_overlay=spec.n_overlay,
        duration_s=float(spec.warmup_steps + spec.steps + 1),
        solver="single_pass",
        incremental_protocol=incremental,
        seed=spec.seed,
    )
    return ExperimentSession(config)


def run_protocol_rate(spec: ProtocolSpec, incremental: bool) -> Dict[str, float]:
    """Measure protocol-plane and end-to-end step rates for one mode."""
    session = build_protocol_session(spec, incremental)
    for _ in range(spec.warmup_steps):
        session.step()
    mesh = session.system
    protocol_before = mesh.protocol_plane_seconds()
    started = time.perf_counter()
    for _ in range(spec.steps):
        session.step()
    elapsed = time.perf_counter() - started
    protocol_s = mesh.protocol_plane_seconds() - protocol_before
    return {
        "steps": float(spec.steps),
        "elapsed_s": elapsed,
        "protocol_s": protocol_s,
        "protocol_steps_per_s": spec.steps / protocol_s if protocol_s > 0 else float("inf"),
        "steps_per_s": spec.steps / elapsed if elapsed > 0 else float("inf"),
    }


def compare_protocol_modes(spec: ProtocolSpec) -> Dict[str, Dict[str, float]]:
    """Run both protocol modes on the identical scenario and report both."""
    from_scratch = run_protocol_rate(spec, incremental=False)
    incremental = run_protocol_rate(spec, incremental=True)
    return {
        "spec": {key: float(value) for key, value in asdict(spec).items()},
        "from_scratch": from_scratch,
        "incremental": incremental,
        "summary": {
            "protocol_speedup": (
                incremental["protocol_steps_per_s"] / from_scratch["protocol_steps_per_s"]
            ),
            "end_to_end_speedup": incremental["steps_per_s"] / from_scratch["steps_per_s"],
        },
    }


def export_fingerprint(incremental: bool, n_overlay: int = 24, duration_s: float = 60.0,
                       seed: int = 5) -> str:
    """A canonical serialization of one reduced-scale run's exports."""
    config = ExperimentConfig(
        system="bullet",
        n_overlay=n_overlay,
        duration_s=duration_s,
        seed=seed,
        incremental_protocol=incremental,
    )
    result = run_experiment(config)
    return json.dumps(
        {
            "useful": result.useful_series,
            "raw": result.raw_series,
            "from_parent": result.from_parent_series,
            "control": result.control_series,
            "duplicate_ratio": result.duplicate_ratio,
            "control_overhead_kbps": result.control_overhead_kbps,
            "bandwidth_cdf": result.bandwidth_cdf_final,
        },
        sort_keys=True,
    )


def verify_exports_identical(n_overlay: int = 24, duration_s: float = 60.0,
                             seed: int = 5) -> None:
    """Assert both protocol modes export byte-identical results."""
    incremental = export_fingerprint(True, n_overlay, duration_s, seed)
    from_scratch = export_fingerprint(False, n_overlay, duration_s, seed)
    if incremental != from_scratch:
        raise SystemExit(
            "verification failed: incremental protocol plane diverged from"
            " the from-scratch path"
        )
