"""Figure 7 — Bullet over a random tree: raw total, useful total, from parent.

Paper result: Bullet over a random tree achieves ~500 Kbps of the 600 Kbps
target at the medium setting (5x the random tree of Figure 6 and ~25% above
the offline bottleneck tree); the raw curve sits only slightly above the
useful curve (few duplicates) and the from-parent share is a modest fraction
of the total.
"""

from conftest import print_series_tail

from repro.experiments.figures import figure6_tree_streaming, figure7_bullet_random_tree


def test_figure7(benchmark, scale):
    data = benchmark.pedantic(figure7_bullet_random_tree, args=(scale,), iterations=1, rounds=1)
    baseline = figure6_tree_streaming(scale)

    print("\n  Figure 7 — Bullet over a random tree (600 Kbps target)")
    print(f"    useful total : {data['useful_kbps']:.0f} Kbps")
    print(f"    raw total    : {data['raw_kbps']:.0f} Kbps")
    print(f"    from parent  : {data['from_parent_kbps']:.0f} Kbps")
    print(f"    duplicates   : {100 * data['duplicate_ratio']:.1f}%")
    print(f"    vs random tree (Fig 6)    : {baseline['random_tree_kbps']:.0f} Kbps")
    print(f"    vs bottleneck tree (Fig 6): {baseline['bottleneck_tree_kbps']:.0f} Kbps")
    print_series_tail("useful series", data["useful_series"])
    print_series_tail("from-parent series", data["from_parent_series"])

    # Shape: Bullet far exceeds streaming over the same random tree.
    assert data["useful_kbps"] > 1.2 * baseline["random_tree_kbps"]
    # Much of Bullet's bandwidth arrives from peers, not the parent.
    assert data["useful_kbps"] > data["from_parent_kbps"]
    # Raw is only modestly above useful (little wasted bandwidth).
    assert data["raw_kbps"] <= 1.4 * data["useful_kbps"]
