"""Ablation — number of peer senders/receivers (paper default: 10).

The paper limits each node to 10 sending and 10 receiving peers.  This
ablation sweeps the limit to show the trade-off: too few peers starve
recovery, while the default comfortably saturates the useful bandwidth.
"""

from repro.core.config import BulletConfig
from repro.experiments.batch import run_batch
from repro.experiments.harness import ExperimentConfig
from repro.topology.links import BandwidthClass

PEER_LIMITS = (2, 5, 10)


def _config(max_peers: int, n_overlay: int, duration_s: float, seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        system="bullet",
        tree_kind="random",
        n_overlay=n_overlay,
        duration_s=duration_s,
        seed=seed,
        bandwidth_class=BandwidthClass.LOW,
        bullet=BulletConfig(
            stream_rate_kbps=600.0, seed=seed, max_senders=max_peers, max_receivers=max_peers
        ),
    )


def test_ablation_peer_count(benchmark, scale, workers):
    duration = min(scale.duration_s, 160.0)
    configs = [
        _config(limit, scale.n_overlay, duration, scale.seed) for limit in PEER_LIMITS
    ]

    def sweep():
        return dict(zip(PEER_LIMITS, run_batch(configs, workers=workers)))

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)

    print("\n  Ablation — peer limit (low bandwidth, 600 Kbps target)")
    print(f"    {'max peers':<12} {'useful Kbps':>12} {'duplicates':>12}")
    for limit, result in sorted(results.items()):
        print(
            f"    {limit:<12} {result.average_useful_kbps:>12.0f}"
            f" {100 * result.duplicate_ratio:>11.1f}%"
        )

    # More peers means more parallel recovery capacity: 10 peers must not be
    # worse than 2 peers by any meaningful margin.
    assert results[10].average_useful_kbps >= 0.9 * results[2].average_useful_kbps
    assert results[5].average_useful_kbps >= 0.8 * results[2].average_useful_kbps
