"""Ablation — number of peer senders/receivers (paper default: 10).

The paper limits each node to 10 sending and 10 receiving peers.  This
ablation sweeps the limit to show the trade-off: too few peers starve
recovery, while the default comfortably saturates the useful bandwidth.

At the reduced benchmark scale a single run is noisy (one unlucky RanSub
draw can swing a configuration by ~10%), so each limit is averaged over
three seeds before the shape assertions.
"""

from repro.core.config import BulletConfig
from repro.experiments.batch import run_batch
from repro.experiments.harness import ExperimentConfig
from repro.topology.links import BandwidthClass

PEER_LIMITS = (2, 5, 10)
N_SEEDS = 3


def _config(max_peers: int, n_overlay: int, duration_s: float, seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        system="bullet",
        tree_kind="random",
        n_overlay=n_overlay,
        duration_s=duration_s,
        seed=seed,
        bandwidth_class=BandwidthClass.LOW,
        bullet=BulletConfig(
            stream_rate_kbps=600.0, seed=seed, max_senders=max_peers, max_receivers=max_peers
        ),
    )


def test_ablation_peer_count(benchmark, scale, workers):
    duration = min(scale.duration_s, 160.0)
    seeds = [scale.seed + offset for offset in range(N_SEEDS)]
    configs = [
        _config(limit, scale.n_overlay, duration, seed)
        for limit in PEER_LIMITS
        for seed in seeds
    ]

    def sweep():
        results = run_batch(configs, workers=workers)
        grouped = {}
        for config, result in zip(configs, results):
            grouped.setdefault(config.bullet.max_senders, []).append(result)
        return grouped

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)

    def mean_useful(limit):
        runs = results[limit]
        return sum(run.average_useful_kbps for run in runs) / len(runs)

    def mean_duplicates(limit):
        runs = results[limit]
        return sum(run.duplicate_ratio for run in runs) / len(runs)

    print("\n  Ablation — peer limit (low bandwidth, 600 Kbps target,"
          f" mean of {N_SEEDS} seeds)")
    print(f"    {'max peers':<12} {'useful Kbps':>12} {'duplicates':>12}")
    for limit in sorted(results):
        print(
            f"    {limit:<12} {mean_useful(limit):>12.0f}"
            f" {100 * mean_duplicates(limit):>11.1f}%"
        )

    # More peers means more parallel recovery capacity: 10 peers must not be
    # worse than 2 peers by any meaningful margin.
    assert mean_useful(10) >= 0.9 * mean_useful(2)
    assert mean_useful(5) >= 0.8 * mean_useful(2)
