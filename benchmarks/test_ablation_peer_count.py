"""Ablation — number of peer senders/receivers (paper default: 10).

The paper limits each node to 10 sending and 10 receiving peers.  This
ablation sweeps the limit to show the trade-off: too few peers starve
recovery, while the default comfortably saturates the useful bandwidth.

At the reduced benchmark scale a single run is noisy (one unlucky RanSub
draw can swing a configuration by ~10%), so each limit is averaged over
three seeds before the shape assertions.  The sweep itself lives in
``repro.experiments.ablations`` so the reproduction pipeline exports the
same numbers this benchmark prints.
"""

from repro.experiments.ablations import PEER_COUNT_SEEDS, ablation_peer_count


def test_ablation_peer_count(benchmark, scale, workers):
    results = benchmark.pedantic(
        lambda: ablation_peer_count(scale, workers=workers),
        iterations=1,
        rounds=1,
    )
    by_limit = results["by_limit"]
    assert results["n_seeds"] == PEER_COUNT_SEEDS

    print("\n  Ablation — peer limit (low bandwidth, 600 Kbps target,"
          f" mean of {results['n_seeds']} seeds)")
    print(f"    {'max peers':<12} {'useful Kbps':>12} {'duplicates':>12}")
    for limit in sorted(by_limit, key=int):
        row = by_limit[limit]
        print(
            f"    {limit:<12} {row['useful_kbps']:>12.0f}"
            f" {100 * row['duplicate_ratio']:>11.1f}%"
        )

    # More peers means more parallel recovery capacity: 10 peers must not be
    # worse than 2 peers by any meaningful margin.
    assert by_limit["10"]["useful_kbps"] >= 0.9 * by_limit["2"]["useful_kbps"]
    assert by_limit["5"]["useful_kbps"] >= 0.8 * by_limit["2"]["useful_kbps"]
