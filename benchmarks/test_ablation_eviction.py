"""Ablation — sender eviction / duplicate threshold (Section 3.4).

Bullet drops a sender whose traffic is mostly duplicates (threshold 50%) and
periodically replaces the least useful sender with a trial peer.  Disabling
eviction (by making the evaluation period enormous) shows the value of
continuously improving the mesh.  The sweep lives in
``repro.experiments.ablations`` so the reproduction pipeline exports the
same numbers this benchmark prints.
"""

from repro.experiments.ablations import ablation_eviction


def test_ablation_eviction(benchmark, scale, workers):
    results = benchmark.pedantic(
        lambda: ablation_eviction(scale, workers=workers),
        iterations=1,
        rounds=1,
    )
    by_variant = results["by_variant"]
    labels = results["labels"]

    print("\n  Ablation — mesh improvement through sender eviction (low bandwidth)")
    print(f"    {'configuration':<26} {'useful Kbps':>12} {'duplicates':>12}")
    for key, row in by_variant.items():
        print(
            f"    {labels[key]:<26} {row['useful_kbps']:>12.0f}"
            f" {100 * row['duplicate_ratio']:>11.1f}%"
        )

    # Re-evaluating peers must not hurt; it usually helps under constraint.
    assert (
        by_variant["eviction"]["useful_kbps"]
        >= 0.85 * by_variant["disabled"]["useful_kbps"]
    )
