"""Ablation — sender eviction / duplicate threshold (Section 3.4).

Bullet drops a sender whose traffic is mostly duplicates (threshold 50%) and
periodically replaces the least useful sender with a trial peer.  Disabling
eviction (by making the evaluation period enormous) shows the value of
continuously improving the mesh.
"""

from repro.core.config import BulletConfig
from repro.experiments.batch import run_batch
from repro.experiments.harness import ExperimentConfig
from repro.topology.links import BandwidthClass

VARIANTS = (
    ("paper (every 3 epochs)", 3),
    ("disabled (10000 epochs)", 10_000),
)


def _config(eviction_period_epochs: int, n_overlay: int, duration_s: float, seed: int):
    return ExperimentConfig(
        system="bullet",
        tree_kind="random",
        n_overlay=n_overlay,
        duration_s=duration_s,
        seed=seed,
        bandwidth_class=BandwidthClass.LOW,
        bullet=BulletConfig(
            stream_rate_kbps=600.0, seed=seed, eviction_period_epochs=eviction_period_epochs
        ),
    )


def test_ablation_eviction(benchmark, scale, workers):
    duration = min(scale.duration_s, 200.0)
    configs = [
        _config(period, scale.n_overlay, duration, scale.seed) for _, period in VARIANTS
    ]

    def sweep():
        batch = run_batch(configs, workers=workers)
        return {name: result for (name, _), result in zip(VARIANTS, batch)}

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)

    print("\n  Ablation — mesh improvement through sender eviction (low bandwidth)")
    print(f"    {'configuration':<26} {'useful Kbps':>12} {'duplicates':>12}")
    for name, result in results.items():
        print(
            f"    {name:<26} {result.average_useful_kbps:>12.0f}"
            f" {100 * result.duplicate_ratio:>11.1f}%"
        )

    with_eviction = results["paper (every 3 epochs)"]
    without_eviction = results["disabled (10000 epochs)"]
    # Re-evaluating peers must not hurt; it usually helps under constraint.
    assert with_eviction.average_useful_kbps >= 0.85 * without_eviction.average_useful_kbps
