"""Figure 15 — PlanetLab-like wide-area run with a constrained source.

Paper result (1.5 Mbps target, source on a low-bandwidth European access
link): Bullet over a random tree delivers noticeably more than TFRC
streaming over a hand-crafted "good" tree (~300 Kbps), which in turn far
exceeds the "worst" tree.  With an unconstrained (US) source both Bullet and
a well-built tree reach the full target rate.
"""

import os

from repro.experiments.figures import figure15_planetlab, figure15_unconstrained_root


def test_figure15_constrained_root(benchmark):
    duration = float(os.environ.get("REPRO_BENCH_DURATION", "200"))
    data = benchmark.pedantic(
        figure15_planetlab, kwargs={"duration_s": duration}, iterations=1, rounds=1
    )

    print("\n  Figure 15 — PlanetLab-like testbed, constrained European source (1.5 Mbps target)")
    print(f"    Bullet over random tree : {data['bullet_kbps']:.0f} Kbps")
    print(f"    good tree (streaming)   : {data['good_tree_kbps']:.0f} Kbps")
    print(f"    worst tree (streaming)  : {data['worst_tree_kbps']:.0f} Kbps")

    # Shape: Bullet >= good tree >= worst tree under a constrained source.
    assert data["bullet_kbps"] >= data["good_tree_kbps"]
    assert data["good_tree_kbps"] >= data["worst_tree_kbps"]
    # The constrained source keeps everyone far from the 1.5 Mbps target.
    assert data["bullet_kbps"] < 1500.0


def test_figure15_unconstrained_root():
    data = figure15_unconstrained_root(duration_s=120.0)

    print("\n  Figure 15 (follow-up) — unconstrained US source")
    print(f"    Bullet over random tree : {data['bullet_kbps']:.0f} Kbps")
    print(f"    good tree (streaming)   : {data['good_tree_kbps']:.0f} Kbps")

    # With ample source bandwidth both approaches deliver far more than the
    # constrained-source scenario; Bullet does not sacrifice performance.
    assert data["bullet_kbps"] >= 0.5 * 1500.0
    assert data["good_tree_kbps"] >= 0.5 * 1500.0
