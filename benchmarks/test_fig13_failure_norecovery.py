"""Figure 13 — worst-case node failure with RanSub recovery disabled.

Paper result: failing the root child with the largest subtree mid-run, with
RanSub frozen afterwards, drops the average useful bandwidth from ~500 Kbps
to ~350 Kbps — but most nodes (including the failed child's descendants)
keep receiving a large portion of the stream through the peerings they
already had.
"""

from repro.experiments.figures import figure13_failure_no_recovery


def test_figure13(benchmark, scale):
    data = benchmark.pedantic(
        figure13_failure_no_recovery, args=(scale,), iterations=1, rounds=1
    )

    retained = data["after_failure_kbps"] / max(data["before_failure_kbps"], 1e-9)
    print("\n  Figure 13 — worst-case failure, RanSub recovery disabled")
    print(f"    failure at              : {data['failure_time_s']:.0f} s")
    print(f"    useful before failure   : {data['before_failure_kbps']:.0f} Kbps")
    print(f"    useful after failure    : {data['after_failure_kbps']:.0f} Kbps")
    print(f"    bandwidth retained      : {100 * retained:.0f}% (paper: ~70%)")

    assert data["before_failure_kbps"] > 0
    # Service degrades but does not collapse: a large portion is retained.
    assert data["after_failure_kbps"] >= 0.4 * data["before_failure_kbps"]
    # And the failure is actually visible (this is the no-recovery case).
    assert data["after_failure_kbps"] <= 1.05 * data["before_failure_kbps"]
