"""Headline scalar claims from Sections 1 and 4.2.

* per-node control overhead of maintaining the mesh ~= 30 Kbps;
* duplicate packets are less than 10% of all received packets;
* average link stress ~= 1.5 (absolute maximum 22 in the paper's run).
"""

from repro.experiments.figures import headline_metrics


def test_headline_claims(benchmark, scale):
    metrics = benchmark.pedantic(headline_metrics, args=(scale,), iterations=1, rounds=1)

    print("\n  Headline claims (from the Figure 7 configuration)")
    print(f"    useful bandwidth        : {metrics['useful_kbps']:.0f} Kbps")
    print(f"    control overhead / node : {metrics['control_overhead_kbps']:.1f} Kbps (paper: ~30)")
    print(f"    duplicate packets       : {100 * metrics['duplicate_ratio']:.1f}% (paper: <10%)")
    print(
        f"    link stress avg / max   : {metrics['link_stress_avg']:.2f}"
        f" / {metrics['link_stress_max']:.0f} (paper: ~1.5 / 22)"
    )

    # Control overhead stays in the tens of Kbps, not hundreds.
    assert metrics["control_overhead_kbps"] < 60.0
    # Duplicates stay near the paper's bound (small slack for the reduced scale).
    assert metrics["duplicate_ratio"] < 0.15
    # Link stress stays low: each physical link carries a traced packet only a
    # couple of times on average.
    assert metrics["link_stress_avg"] < 4.0
