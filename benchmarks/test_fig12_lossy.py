"""Figure 12 — Bullet vs the bottleneck tree on lossy topologies (Section 4.5).

Paper result: with per-link random losses plus 5% overloaded links, the
TCP-friendly tree suffers badly (bandwidth is strictly monotonically
decreasing down the tree and TFRC backs off on every lossy hop) while Bullet
recovers the losses from peers; Bullet delivers at least twice the bottleneck
tree in all settings, and the low-bandwidth tree barely delivers anything.

Reproduction note: at the reduced default scale the offline OMBT tree can
route around the handful of overloaded links (its estimator explicitly avoids
lossy links), so the tree is hurt far less than in the paper's 20,000-node
topologies.  The benchmark therefore asserts the directional shape — loss
hurts the tree more than it hurts Bullet as bandwidth tightens, and Bullet
wins outright at the constrained (low) setting — rather than the paper's 2x
factors; see EXPERIMENTS.md for the discussion.
"""

from repro.experiments.figures import figure12_lossy


def test_figure12(benchmark, scale, workers):
    rows = benchmark.pedantic(
        figure12_lossy, args=(scale,), kwargs={"workers": workers},
        iterations=1, rounds=1,
    )

    print("\n  Figure 12 — lossy network (600 Kbps target)")
    print(f"    {'bandwidth':<10} {'Bullet':>10} {'bottleneck tree':>16} {'ratio':>7}")
    for name in ("high", "medium", "low"):
        row = rows[name]
        ratio = row["bullet_kbps"] / max(row["bottleneck_tree_kbps"], 1e-9)
        print(
            f"    {name:<10} {row['bullet_kbps']:>10.0f} {row['bottleneck_tree_kbps']:>16.0f}"
            f" {ratio:>6.2f}x"
        )

    def ratio(name: str) -> float:
        return rows[name]["bullet_kbps"] / max(rows[name]["bottleneck_tree_kbps"], 1e-9)

    # Everything still delivers data under loss.
    for name in ("high", "medium", "low"):
        assert rows[name]["bullet_kbps"] > 0
        assert rows[name]["bottleneck_tree_kbps"] > 0
    # At the constrained (low) setting Bullet overtakes the best offline tree.
    assert rows["low"]["bullet_kbps"] >= rows["low"]["bottleneck_tree_kbps"]
    # Bullet's relative advantage grows as bandwidth tightens (the paper's trend).
    assert ratio("low") >= ratio("high")
