"""Ablation — RanSub epoch length (paper default: 5 seconds).

The epoch length bounds how quickly nodes learn about new candidate peers and
how often the mesh is re-evaluated.  Very long epochs slow peer discovery;
very short ones only add control overhead.
"""

from repro.core.config import BulletConfig
from repro.experiments.batch import run_batch
from repro.experiments.harness import ExperimentConfig
from repro.topology.links import BandwidthClass

EPOCHS = (5.0, 20.0)


def _config(epoch_s: float, n_overlay: int, duration_s: float, seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        system="bullet",
        tree_kind="random",
        n_overlay=n_overlay,
        duration_s=duration_s,
        seed=seed,
        bandwidth_class=BandwidthClass.MEDIUM,
        bullet=BulletConfig(stream_rate_kbps=600.0, seed=seed, ransub_epoch_s=epoch_s),
    )


def test_ablation_epoch_length(benchmark, scale, workers):
    duration = min(scale.duration_s, 160.0)
    configs = [_config(epoch, scale.n_overlay, duration, scale.seed) for epoch in EPOCHS]

    def sweep():
        return dict(zip(EPOCHS, run_batch(configs, workers=workers)))

    results = benchmark.pedantic(sweep, iterations=1, rounds=1)

    print("\n  Ablation — RanSub epoch length (medium bandwidth)")
    print(f"    {'epoch':<10} {'useful Kbps':>12} {'control Kbps':>14}")
    for epoch, result in sorted(results.items()):
        print(
            f"    {epoch:<10.0f} {result.average_useful_kbps:>12.0f}"
            f" {result.control_overhead_kbps:>14.1f}"
        )

    # The paper's 5-second epoch discovers peers faster than a 20-second one
    # and so must not deliver less bandwidth.
    assert results[5.0].average_useful_kbps >= 0.9 * results[20.0].average_useful_kbps
    # Longer epochs mean less RanSub control traffic.
    assert results[20.0].control_overhead_kbps <= results[5.0].control_overhead_kbps * 1.1
