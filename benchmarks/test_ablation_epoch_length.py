"""Ablation — RanSub epoch length (paper default: 5 seconds).

The epoch length bounds how quickly nodes learn about new candidate peers and
how often the mesh is re-evaluated.  Very long epochs slow peer discovery;
very short ones only add control overhead.  The sweep lives in
``repro.experiments.ablations`` so the reproduction pipeline exports the
same numbers this benchmark prints.
"""

from repro.experiments.ablations import ablation_epoch_length


def test_ablation_epoch_length(benchmark, scale, workers):
    results = benchmark.pedantic(
        lambda: ablation_epoch_length(scale, workers=workers),
        iterations=1,
        rounds=1,
    )
    by_epoch = results["by_epoch"]

    print("\n  Ablation — RanSub epoch length (medium bandwidth)")
    print(f"    {'epoch':<10} {'useful Kbps':>12} {'control Kbps':>14}")
    for epoch in sorted(by_epoch, key=float):
        row = by_epoch[epoch]
        print(
            f"    {float(epoch):<10.0f} {row['useful_kbps']:>12.0f}"
            f" {row['control_overhead_kbps']:>14.1f}"
        )

    # The paper's 5-second epoch discovers peers faster than a 20-second one
    # and so must not deliver less bandwidth.
    assert by_epoch["5"]["useful_kbps"] >= 0.9 * by_epoch["20"]["useful_kbps"]
    # Longer epochs mean less RanSub control traffic.
    assert (
        by_epoch["20"]["control_overhead_kbps"]
        <= by_epoch["5"]["control_overhead_kbps"] * 1.1
    )
