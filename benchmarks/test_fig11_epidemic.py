"""Figure 11 — Bullet vs push gossiping vs streaming with anti-entropy.

Paper result (900 Kbps target, 100 nodes, medium bandwidth): Bullet's useful
bandwidth is roughly 60% higher than either epidemic approach, and the
epidemic approaches ship a large volume of duplicates (raw well above
useful), while Bullet's raw and useful curves nearly coincide.
"""

from repro.experiments.figures import figure11_epidemic
from repro.experiments.metrics import steady_state_average


def test_figure11(benchmark, scale, workers):
    data = benchmark.pedantic(
        figure11_epidemic, args=(scale,), kwargs={"workers": workers},
        iterations=1, rounds=1,
    )

    bullet_raw = steady_state_average(data["bullet_raw_series"])
    gossip_raw = steady_state_average(data["gossip_raw_series"])
    antientropy_raw = steady_state_average(data["antientropy_raw_series"])

    print("\n  Figure 11 — Bullet vs epidemic approaches (900 Kbps target)")
    print(f"    {'system':<24} {'useful':>10} {'raw':>10}")
    print(f"    {'Bullet':<24} {data['bullet_useful_kbps']:>10.0f} {bullet_raw:>10.0f}")
    print(f"    {'push gossiping':<24} {data['gossip_useful_kbps']:>10.0f} {gossip_raw:>10.0f}")
    print(
        f"    {'streaming w/ AE':<24} {data['antientropy_useful_kbps']:>10.0f}"
        f" {antientropy_raw:>10.0f}"
    )

    # Shape: Bullet delivers more useful bandwidth than both epidemic systems.
    assert data["bullet_useful_kbps"] > data["gossip_useful_kbps"]
    assert data["bullet_useful_kbps"] > data["antientropy_useful_kbps"]
    # Bullet wastes little (raw close to useful); gossip is far less efficient.
    bullet_efficiency = data["bullet_useful_kbps"] / max(bullet_raw, 1e-9)
    gossip_efficiency = data["gossip_useful_kbps"] / max(gossip_raw, 1e-9)
    assert bullet_efficiency > gossip_efficiency
