"""Figure 6 — TFRC streaming over the bottleneck-bandwidth tree vs a random tree.

Paper result: the offline bottleneck-bandwidth tree sustains roughly 400 Kbps
of a 600 Kbps stream at the medium bandwidth setting while a random tree
delivers well under 100 Kbps.  The reproduction checks the *ordering* and the
existence of a substantial gap; absolute numbers depend on scale.
"""

from conftest import print_series_tail

from repro.experiments.figures import figure6_tree_streaming


def test_figure6(benchmark, scale, workers):
    data = benchmark.pedantic(
        figure6_tree_streaming, args=(scale,), kwargs={"workers": workers},
        iterations=1, rounds=1,
    )

    print("\n  Figure 6 — achieved bandwidth, tree streaming (600 Kbps target)")
    print(f"    bottleneck-bandwidth tree: {data['bottleneck_tree_kbps']:.0f} Kbps")
    print(f"    random tree              : {data['random_tree_kbps']:.0f} Kbps")
    print_series_tail("bottleneck tree series", data["bottleneck_tree_series"])
    print_series_tail("random tree series", data["random_tree_series"])

    # Shape: the offline bottleneck tree clearly outperforms a random tree.
    assert data["bottleneck_tree_kbps"] > data["random_tree_kbps"]
    assert data["bottleneck_tree_kbps"] >= 1.2 * data["random_tree_kbps"]
    # Both deliver something but the random tree falls short of the target.
    assert data["random_tree_kbps"] > 0
    assert data["random_tree_kbps"] < 600.0
