"""Figure 14 — worst-case node failure with RanSub failure detection enabled.

Paper result: with the root timing out the stalled epoch and continuing to
distribute random subsets, the same worst-case failure causes a negligible
disruption — nodes quickly learn of other peers and the descendants of the
failed node compensate through already-established peerings.
"""

from repro.experiments.figures import (
    figure13_failure_no_recovery,
    figure14_failure_with_recovery,
)


def test_figure14(benchmark, scale):
    data = benchmark.pedantic(
        figure14_failure_with_recovery, args=(scale,), iterations=1, rounds=1
    )
    no_recovery = figure13_failure_no_recovery(scale)

    retained = data["after_failure_kbps"] / max(data["before_failure_kbps"], 1e-9)
    retained_without = no_recovery["after_failure_kbps"] / max(
        no_recovery["before_failure_kbps"], 1e-9
    )
    print("\n  Figure 14 — worst-case failure, RanSub recovery enabled")
    print(f"    useful before failure : {data['before_failure_kbps']:.0f} Kbps")
    print(f"    useful after failure  : {data['after_failure_kbps']:.0f} Kbps")
    print(f"    retained w/ recovery  : {100 * retained:.0f}%")
    print(f"    retained w/o recovery : {100 * retained_without:.0f}% (Figure 13)")

    assert data["before_failure_kbps"] > 0
    # With recovery the disruption is small ...
    assert data["after_failure_kbps"] >= 0.6 * data["before_failure_kbps"]
    # ... and no worse than the no-recovery case of Figure 13.
    assert retained >= retained_without * 0.9
