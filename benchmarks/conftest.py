"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's evaluation at
a reduced (configurable) scale and prints the same rows / series summaries
the paper reports, so ``pytest benchmarks/ --benchmark-only`` reproduces the
whole evaluation section.

Environment knobs:

* ``REPRO_BENCH_NODES``    — overlay size per run (default 40; paper: 1000)
* ``REPRO_BENCH_DURATION`` — simulated seconds per run (default 200; paper: 400-500)
* ``REPRO_BENCH_SEED``     — root seed (default 1)
* ``REPRO_BENCH_WORKERS``  — process fan-out for batched runs (default 1)
"""

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.figures import FigureScale  # noqa: E402


def bench_scale() -> FigureScale:
    """The benchmark scale, overridable through environment variables."""
    return FigureScale(
        n_overlay=int(os.environ.get("REPRO_BENCH_NODES", "40")),
        duration_s=float(os.environ.get("REPRO_BENCH_DURATION", "200")),
        seed=int(os.environ.get("REPRO_BENCH_SEED", "1")),
    )


def bench_workers() -> int:
    """Process fan-out used by the batched benchmarks."""
    return int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


@pytest.fixture(scope="session")
def scale() -> FigureScale:
    """Session-wide benchmark scale."""
    return bench_scale()


@pytest.fixture(scope="session")
def workers() -> int:
    """Session-wide worker count for run_batch fan-out."""
    return bench_workers()


def print_series_tail(name: str, series, points: int = 6) -> None:
    """Print the last few (time, Kbps) points of a series, like the figures' tails."""
    tail = series[-points:]
    rendered = ", ".join(f"{t:.0f}s={v:.0f}" for t, v in tail)
    print(f"    {name}: {rendered}")
