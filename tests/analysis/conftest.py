"""Shared helpers for the analyzer test suite.

Rule tests are fixture-based: each test writes a small source tree into
``tmp_path``, runs the real analyzer over it and asserts on the findings —
no mocking of the AST pass.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.runner import run_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def analyze(tmp_path):
    """Write ``sources`` (relative path -> code) and analyze the tree.

    Returns the finding list; pass ``strict=False`` to skip stale-pragma
    linting and ``config=`` to override the default scoping (the default
    places every file in the strict tier).
    """

    def _run(sources, strict=True, config=None):
        for relative, text in sources.items():
            path = tmp_path / relative
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text), encoding="utf-8")
        resolved = config or AnalysisConfig(root=tmp_path)
        return run_paths([tmp_path], root=tmp_path, strict=strict, config=resolved)

    return _run
