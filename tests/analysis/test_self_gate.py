"""The analyzer gates this repo: src/ is clean, seeded regressions are not.

The second test is the analyzer's own acceptance check: copy the real tree,
re-introduce the two canonical bug classes — an unsorted set iteration in the
mesh and a cache mutation whose epoch bump was deleted — and require the
scan to fail naming exactly those sites.
"""

import shutil
from pathlib import Path

from repro.analysis.config import load_config
from repro.analysis.report import EXIT_CLEAN, EXIT_FINDINGS, EXIT_INTERNAL, exit_code
from repro.analysis.runner import run_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSelfGate:
    def test_full_src_tree_is_clean(self):
        config = load_config(REPO_ROOT)
        findings = run_paths(
            [REPO_ROOT / "src"], root=REPO_ROOT, strict=True, config=config
        )
        assert findings == [], "\n".join(f.render() for f in findings)
        assert exit_code(findings) == EXIT_CLEAN

    def test_seeded_regressions_are_caught(self, tmp_path):
        shutil.copytree(REPO_ROOT / "src", tmp_path / "src")
        shutil.copy(REPO_ROOT / "pyproject.toml", tmp_path / "pyproject.toml")

        mesh = tmp_path / "src" / "repro" / "core" / "mesh.py"
        source = mesh.read_text()
        marker = "        self._sent_this_step = {}"
        assert marker in source
        mesh.write_text(
            source.replace(
                marker,
                marker + "\n        for _node in self.failed:\n            pass",
                1,
            )
        )

        graph = tmp_path / "src" / "repro" / "topology" / "graph.py"
        source = graph.read_text()
        bump = "        self._routing.note_loss_change()\n"
        assert bump in source
        graph.write_text(source.replace(bump, "", 1))

        config = load_config(tmp_path)
        findings = run_paths(
            [tmp_path / "src"], root=tmp_path, strict=True, config=config
        )
        assert exit_code(findings) == EXIT_FINDINGS
        rendered = [finding.render() for finding in findings]
        assert any(
            "repro/core/mesh.py" in line and "DET003" in line for line in rendered
        ), rendered
        assert any(
            "repro/topology/graph.py" in line
            and "COH001" in line
            and "note_loss_change" in line
            for line in rendered
        ), rendered

    def test_unparseable_file_is_par001(self, analyze):
        findings = analyze({"mod.py": 'x = """unterminated\n'})
        assert [finding.rule for finding in findings] == ["PAR001"]

    def test_exit_code_contract(self, analyze, capsys, tmp_path):
        from repro.analysis.__main__ import main

        clean = tmp_path / "clean"
        clean.mkdir()
        (clean / "mod.py").write_text("def noop():\n    return 0\n")
        assert main([str(clean), "--root", str(tmp_path)]) == EXIT_CLEAN

        dirty = tmp_path / "dirty"
        dirty.mkdir()
        (dirty / "mod.py").write_text(
            "def walk(members: set):\n    for m in members:\n        print(m)\n"
        )
        assert main([str(dirty), "--root", str(tmp_path)]) == EXIT_FINDINGS

        assert main([str(tmp_path / "missing")]) == EXIT_INTERNAL
        capsys.readouterr()
