"""The order-shakeout sanitizer: perturbed yet reproducible set iteration."""

import pickle

import pytest

from repro.analysis.shakeout import (
    ShakeoutSet,
    shakeout_enabled,
    shakeout_seed,
    tracked_set,
)


@pytest.fixture
def sanitizer_on(monkeypatch):
    monkeypatch.setenv("REPRO_SHAKEOUT", "1")
    monkeypatch.delenv("REPRO_SHAKEOUT_SEED", raising=False)


class TestEnvironmentGate:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHAKEOUT", raising=False)
        assert not shakeout_enabled()
        assert type(tracked_set("site", [1, 2, 3])) is set

    def test_enabled_values(self, monkeypatch):
        for value in ("1", "true", "yes"):
            monkeypatch.setenv("REPRO_SHAKEOUT", value)
            assert shakeout_enabled()
        for value in ("", "0", "false", "no"):
            monkeypatch.setenv("REPRO_SHAKEOUT", value)
            assert not shakeout_enabled()

    def test_seed_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHAKEOUT_SEED", "42")
        assert shakeout_seed() == 42
        monkeypatch.setenv("REPRO_SHAKEOUT_SEED", "bogus")
        assert shakeout_seed() == 1

    def test_tracked_set_returns_proxy_when_enabled(self, sanitizer_on):
        assert type(tracked_set("site", [1, 2, 3])) is ShakeoutSet


class TestPerturbedIteration:
    def test_iteration_is_reproducible(self):
        a = ShakeoutSet(range(64), seed=5)
        b = ShakeoutSet(reversed(range(64)), seed=5)
        assert list(a) == list(b)

    def test_iteration_perturbs_value_order(self):
        ordered = list(ShakeoutSet(range(64), seed=5))
        assert ordered != sorted(ordered)
        assert set(ordered) == set(range(64))

    def test_different_seeds_differ(self):
        assert list(ShakeoutSet(range(64), seed=1)) != list(
            ShakeoutSet(range(64), seed=2)
        )

    def test_label_salts_site_orders_apart(self, sanitizer_on):
        a = tracked_set("site-a", range(64))
        b = tracked_set("site-b", range(64))
        assert list(a) != list(b)

    def test_pop_follows_perturbed_order(self):
        proxy = ShakeoutSet(range(16), seed=3)
        expected = list(proxy)
        popped = [proxy.pop() for _ in range(16)]
        assert popped == expected
        with pytest.raises(KeyError):
            proxy.pop()

    def test_set_semantics_preserved(self):
        proxy = ShakeoutSet(range(8), seed=3)
        assert 3 in proxy
        assert len(proxy) == 8
        proxy.add(99)
        proxy.discard(0)
        assert set(proxy) == (set(range(1, 8)) | {99})

    def test_algebra_returns_plain_sets(self):
        # One perturbation layer at the declared site is enough; derived
        # sets fall back to plain `set` (and plain iteration-order rules).
        proxy = ShakeoutSet(range(8), seed=3)
        assert type(proxy | {9}) is set
        assert type(proxy - {1}) is set
        assert type(proxy.copy()) is set

    def test_pickle_roundtrip_keeps_seed_and_order(self):
        proxy = ShakeoutSet(range(32), seed=9)
        clone = pickle.loads(pickle.dumps(proxy))
        assert type(clone) is ShakeoutSet
        assert list(clone) == list(proxy)
