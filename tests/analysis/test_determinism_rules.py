"""Good/bad fixture pairs for the determinism rules (DET001-DET005)."""

def rules_of(findings):
    return [finding.rule for finding in findings]


class TestDet001Entropy:
    def test_bad_module_random(self, analyze):
        findings = analyze({"mod.py": """
            import random

            def draw():
                return random.random()
        """})
        assert "DET001" in rules_of(findings)

    def test_bad_uuid_and_urandom(self, analyze):
        findings = analyze({"mod.py": """
            import os
            import uuid

            def fresh_id():
                return uuid.uuid4(), os.urandom(8)
        """})
        assert rules_of(findings).count("DET001") == 2

    def test_good_seeded_rng(self, analyze):
        findings = analyze({"mod.py": """
            from repro.util.rng import SeededRng

            def draw(rng: SeededRng):
                return rng.random()
        """})
        assert findings == []


class TestDet002WallClock:
    def test_bad_time_time(self, analyze):
        findings = analyze({"mod.py": """
            import time

            def now():
                return time.time()
        """})
        assert "DET002" in rules_of(findings)

    def test_bad_perf_counter_and_datetime_now(self, analyze):
        findings = analyze({"mod.py": """
            import datetime
            import time

            def stamps():
                return time.perf_counter(), datetime.datetime.now()
        """})
        assert rules_of(findings).count("DET002") == 2

    def test_good_simulated_clock(self, analyze):
        findings = analyze({"mod.py": """
            def advance(sim_time: float, dt: float) -> float:
                return sim_time + dt
        """})
        assert findings == []


class TestDet003SetIteration:
    def test_bad_for_over_set(self, analyze):
        findings = analyze({"mod.py": """
            def walk(members: set):
                for member in members:
                    print(member)
        """})
        assert rules_of(findings) == ["DET003"]

    def test_bad_listcomp_over_set_literal(self, analyze):
        findings = analyze({"mod.py": """
            def order():
                pending = {3, 1, 2}
                return [item * 2 for item in pending]
        """})
        assert rules_of(findings) == ["DET003"]

    def test_bad_join_over_set(self, analyze):
        findings = analyze({"mod.py": """
            def label(names: set) -> str:
                return ",".join(names)
        """})
        assert rules_of(findings) == ["DET003"]

    def test_bad_set_keyed_dict_views(self, analyze):
        findings = analyze({"mod.py": """
            def views(members: set):
                weights = dict.fromkeys(members, 0)
                for member in weights:
                    print(member)
        """})
        assert rules_of(findings) == ["DET003"]

    def test_good_sorted_iteration(self, analyze):
        findings = analyze({"mod.py": """
            def walk(members: set):
                for member in sorted(members):
                    print(member)
        """})
        assert findings == []

    def test_good_order_free_consumers(self, analyze):
        # Aggregations whose result cannot depend on visit order are exempt.
        findings = analyze({"mod.py": """
            def stats(members: set):
                total = sum(m for m in members)
                biggest = max(members)
                everyone = {m + 1 for m in members}
                return total, biggest, len(everyone), any(m > 2 for m in members)
        """})
        assert findings == []

    def test_good_set_algebra_results_into_sorted(self, analyze):
        findings = analyze({"mod.py": """
            def merge(a: set, b: set):
                return sorted(a | b), sorted(a.intersection(b))
        """})
        assert findings == []

    def test_nonset_reassignment_clears_taint(self, analyze):
        findings = analyze({"mod.py": """
            def rebind(members: set):
                members = sorted(members)
                for member in members:
                    print(member)
        """})
        assert findings == []


class TestDet004IdOrdering:
    def test_bad_id_in_sort_key(self, analyze):
        findings = analyze({"mod.py": """
            def order(items):
                return sorted(items, key=lambda item: id(item))
        """})
        assert "DET004" in rules_of(findings)

    def test_bad_id_in_comparison(self, analyze):
        findings = analyze({"mod.py": """
            def before(a, b):
                return id(a) < id(b)
        """})
        assert "DET004" in rules_of(findings)

    def test_good_id_for_identity_check(self, analyze):
        # Identity bookkeeping (dict keyed by id, equality) is fine; only
        # *orderings* built on addresses are flagged.
        findings = analyze({"mod.py": """
            def same(a, b):
                return id(a) == id(b)
        """})
        assert findings == []


class TestDet005BuiltinHash:
    def test_bad_bare_hash(self, analyze):
        findings = analyze({"mod.py": """
            def bucket(key, buckets):
                return hash(key) % buckets
        """})
        assert rules_of(findings) == ["DET005"]

    def test_good_stable_hash(self, analyze):
        findings = analyze({"mod.py": """
            from repro.util.hashing import stable_hash

            def bucket(key, buckets):
                return stable_hash(key) % buckets
        """})
        assert findings == []
