"""Pragma handling (PRG001/PRG002) and ``[tool.repro-analysis]`` scoping."""

import textwrap

from repro.analysis.config import AnalysisConfig, load_config


def rules_of(findings):
    return [finding.rule for finding in findings]


class TestPragmas:
    def test_pragma_suppresses_same_line_finding(self, analyze):
        findings = analyze({"mod.py": """
            def walk(members: set):
                for member in members:  # det: ok(membership only, order never leaks)
                    print(member)
        """})
        assert findings == []

    def test_reasonless_pragma_is_prg001_and_still_suppresses(self, analyze):
        findings = analyze({"mod.py": """
            def walk(members: set):
                for member in members:  # det: ok
                    print(member)
        """})
        assert rules_of(findings) == ["PRG001"]

    def test_stale_pragma_is_prg002_under_strict_only(self, analyze):
        source = {"mod.py": """
            def plain(items: list):
                return list(items)  # det: ok(lists are ordered, nothing to suppress)
        """}
        assert rules_of(analyze(source, strict=True)) == ["PRG002"]
        assert analyze(source, strict=False) == []

    def test_pragma_inside_string_literal_is_not_a_pragma(self, analyze):
        findings = analyze({"mod.py": '''
            HELP = "suppress with `# det: ok(reason)` on the flagged line"

            def describe():
                return HELP
        '''})
        assert findings == []

    def test_pragma_only_covers_its_own_line(self, analyze):
        findings = analyze({"mod.py": """
            def walk(members: set):
                # det: ok(comment on the wrong line)
                for member in members:
                    print(member)
        """})
        # report order is (path, line): the stale pragma sits one line above
        assert rules_of(findings) == ["PRG002", "DET003"]


class TestConfigScoping:
    def test_relaxed_tier_disables_listed_rules(self, analyze, tmp_path):
        config = AnalysisConfig(
            root=tmp_path,
            strict_paths=("sim",),
            relaxed_paths=("scripts",),
            relaxed_disable=("DET002",),
        )
        findings = analyze(
            {
                "scripts/bench.py": """
                    import time

                    def stamp():
                        return time.time()
                """,
                "sim/core.py": """
                    import time

                    def stamp():
                        return time.time()
                """,
            },
            config=config,
        )
        assert [(finding.rule, finding.path) for finding in findings] == [
            ("DET002", "sim/core.py")
        ]

    def test_allow_table_waives_rules_per_file(self, analyze, tmp_path):
        config = AnalysisConfig(
            root=tmp_path,
            allow={"rng.py": ("DET001",)},
        )
        findings = analyze(
            {"rng.py": """
                import random

                def draw():
                    return random.random()
            """},
            config=config,
        )
        assert findings == []

    def test_excluded_paths_are_not_scanned(self, analyze, tmp_path):
        config = AnalysisConfig(root=tmp_path, exclude=("vendored",))
        findings = analyze(
            {"vendored/legacy.py": """
                import random

                def draw():
                    return random.random()
            """},
            config=config,
        )
        assert findings == []

    def test_unknown_rule_id_rejected(self, tmp_path):
        try:
            AnalysisConfig(root=tmp_path, relaxed_disable=("NOPE99",))
        except ValueError as exc:
            assert "NOPE99" in str(exc)
        else:
            raise AssertionError("expected ValueError for unknown rule id")


class TestConfigLoading:
    PYPROJECT = """
        [project]
        name = "demo"

        [tool.repro-analysis]
        strict-paths = ["src/repro"]
        relaxed-paths = [
            "scripts",
            "benchmarks",
        ]
        relaxed-disable = ["DET002"]
        exclude = ["tests"]

        [tool.repro-analysis.allow]
        "src/repro/util/rng.py" = ["DET001"]
    """

    def test_load_config_reads_section(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(textwrap.dedent(self.PYPROJECT))
        config = load_config(tmp_path)
        assert config.strict_paths == ("src/repro",)
        assert config.relaxed_paths == ("scripts", "benchmarks")
        assert config.relaxed_disable == ("DET002",)
        assert config.allow == {"src/repro/util/rng.py": ("DET001",)}

    def test_fallback_parser_matches_tomllib(self, tmp_path):
        # The py3.10 fallback must produce the same config the stdlib
        # parser does on the section shape the repo actually uses.
        from repro.analysis import config as config_module

        (tmp_path / "pyproject.toml").write_text(textwrap.dedent(self.PYPROJECT))
        fallback = config_module._fallback_parse(
            (tmp_path / "pyproject.toml").read_text()
        )
        via_loader = load_config(tmp_path)
        assert fallback["strict-paths"] == list(via_loader.strict_paths)
        assert fallback["relaxed-paths"] == list(via_loader.relaxed_paths)
        assert fallback["allow"] == {
            path: list(rules) for path, rules in via_loader.allow.items()
        }

    def test_missing_file_and_section_yield_defaults(self, tmp_path):
        assert load_config(tmp_path).strict_paths == ("src/repro",)
        (tmp_path / "pyproject.toml").write_text("[project]\nname = 'demo'\n")
        assert load_config(tmp_path).strict_paths == ("src/repro",)
