"""Fixture pairs for the cache-coherence rule (COH001) and its tables."""

import textwrap


def rules_of(findings):
    return [finding.rule for finding in findings]


TABLE = textwrap.dedent("""
    CACHE_INVARIANTS = {
        "Cache": {
            "scope": "module",
            "attrs": {"payload": ["version"]},
            "calls": {"_items.append": ["version"]},
            "exempt": ["_swap_payload"],
        },
    }
""")


def guarded(body):
    """The shared table followed by ``body`` (both at column zero)."""
    return TABLE + textwrap.dedent(body)


class TestCoh001Attrs:
    def test_bad_store_without_bump(self, analyze):
        findings = analyze({"mod.py": guarded("""
            class Cache:
                def poison(self, value):
                    self.payload = value
        """)})
        assert rules_of(findings) == ["COH001"]
        assert "payload" in findings[0].message
        assert "version" in findings[0].message

    def test_good_store_with_bump(self, analyze):
        findings = analyze({"mod.py": guarded("""
            class Cache:
                def store(self, value):
                    self.payload = value
                    self.version += 1
        """)})
        assert findings == []

    def test_bump_before_mutation_counts(self, analyze):
        findings = analyze({"mod.py": guarded("""
            class Cache:
                def store(self, value):
                    self.version += 1
                    self.payload = value
        """)})
        assert findings == []

    def test_bump_in_sibling_branch_does_not_count(self, analyze):
        # The bump only runs on the else path; the mutation is unguarded on
        # the if path, which is exactly the bug class COH001 exists for.
        findings = analyze({"mod.py": guarded("""
            class Cache:
                def store(self, value, fast):
                    self.payload = value
                    if fast:
                        pass
                    else:
                        self.version += 1
        """)})
        assert rules_of(findings) == ["COH001"]

    def test_bump_in_enclosing_list_counts(self, analyze):
        findings = analyze({"mod.py": guarded("""
            class Cache:
                def store(self, values):
                    for value in sorted(values):
                        self.payload = value
                    self.version += 1
        """)})
        assert findings == []

    def test_init_is_exempt(self, analyze):
        findings = analyze({"mod.py": guarded("""
            class Cache:
                def __init__(self):
                    self.payload = None
                    self.version = 0
        """)})
        assert findings == []

    def test_declared_exempt_helper(self, analyze):
        findings = analyze({"mod.py": guarded("""
            class Cache:
                def _swap_payload(self, value):
                    self.payload = value

                def store(self, value):
                    self._swap_payload(value)
                    self.version += 1
        """)})
        assert findings == []


class TestCoh001Calls:
    def test_bad_mutating_call_without_bump(self, analyze):
        findings = analyze({"mod.py": guarded("""
            class Cache:
                def push(self, value):
                    self._items.append(value)
        """)})
        assert rules_of(findings) == ["COH001"]

    def test_good_mutating_call_with_bump(self, analyze):
        findings = analyze({"mod.py": guarded("""
            class Cache:
                def push(self, value):
                    self._items.append(value)
                    self.version += 1
        """)})
        assert findings == []


class TestTreeScope:
    def test_tree_table_guards_other_modules(self, analyze):
        findings = analyze({
            "caches.py": """
                CACHE_INVARIANTS = {
                    "Link": {
                        "scope": "tree",
                        "attrs": {"loss_rate": ["note_loss_change"]},
                    },
                }
            """,
            "other.py": """
                def corrupt(link, rate):
                    link.loss_rate = rate
            """,
        })
        assert rules_of(findings) == ["COH001"]
        assert findings[0].path.endswith("other.py")
        assert "caches.py" in findings[0].message

    def test_module_table_stays_home(self, analyze):
        findings = analyze({
            "caches.py": TABLE,
            "other.py": """
                def elsewhere(cache, value):
                    cache.payload = value
            """,
        })
        assert findings == []


class TestTableValidation:
    def test_malformed_table_is_tbl001(self, analyze):
        findings = analyze({"mod.py": """
            CACHE_INVARIANTS = {"Cache": {"scope": "galaxy", "attrs": {"a": ["v"]}}}
        """})
        assert rules_of(findings) == ["TBL001"]

    def test_empty_spec_is_tbl001(self, analyze):
        findings = analyze({"mod.py": """
            CACHE_INVARIANTS = {"Cache": {"scope": "module"}}
        """})
        assert rules_of(findings) == ["TBL001"]

    def test_non_literal_table_is_tbl001(self, analyze):
        findings = analyze({"mod.py": """
            BUMPS = ["version"]
            CACHE_INVARIANTS = {"Cache": {"attrs": {"payload": BUMPS}}}
        """})
        assert rules_of(findings) == ["TBL001"]
