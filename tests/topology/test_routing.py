"""Unit tests for the amortized routing engine (per-source trees + caches)."""

import pytest

from repro.topology.generator import (
    TopologyConfig,
    generate_topology,
    place_overlay_participants,
)
from repro.topology.graph import Topology
from repro.topology.links import LinkType
from repro.util.rng import SeededRng

SMALL = TopologyConfig(
    transit_routers=3,
    stub_domains=6,
    routers_per_stub=3,
    clients_per_stub=4,
    extra_stub_stub_links=3,
    seed=11,
)


def line_topology():
    """client 0 -- stub 1 -- transit 2 -- stub 3 -- client 4."""
    topo = Topology()
    topo.add_node(0, "client")
    topo.add_node(1, "stub")
    topo.add_node(2, "transit")
    topo.add_node(3, "stub")
    topo.add_node(4, "client")
    topo.add_duplex_link(0, 1, LinkType.CLIENT_STUB, 1000.0, 0.001)
    topo.add_duplex_link(1, 2, LinkType.TRANSIT_STUB, 2000.0, 0.01)
    topo.add_duplex_link(2, 3, LinkType.TRANSIT_STUB, 3000.0, 0.01)
    topo.add_duplex_link(3, 4, LinkType.CLIENT_STUB, 500.0, 0.002)
    return topo


def sample_pairs(topology, count, seed=3):
    clients = list(topology.client_nodes)
    rng = SeededRng(seed, "pairs")
    pairs = []
    while len(pairs) < count:
        a, b = rng.sample(clients, 2)
        pairs.append((a, b))
    return pairs


def assert_same_path(a, b):
    assert a.links == b.links
    assert a.delay_s == b.delay_s
    assert a.loss_rate == b.loss_rate
    assert a.bottleneck_kbps == b.bottleneck_kbps


class TestEngineMatchesNetworkx:
    def test_paths_match_reference_on_generated_topology(self):
        engine_topo = generate_topology(SMALL)
        legacy_topo = generate_topology(SMALL)
        legacy_topo.use_routing_engine = False
        for src, dst in sample_pairs(engine_topo, 200):
            assert_same_path(engine_topo.path(src, dst), legacy_topo.path(src, dst))

    def test_round_trip_matches_reference(self):
        engine_topo = generate_topology(SMALL)
        legacy_topo = generate_topology(SMALL)
        legacy_topo.use_routing_engine = False
        for src, dst in sample_pairs(engine_topo, 50):
            assert engine_topo.round_trip(src, dst) == legacy_topo.round_trip(src, dst)

    def test_self_path_is_empty(self):
        topo = line_topology()
        info = topo.path(2, 2)
        assert info.links == () and info.delay_s == 0.0

    def test_no_route_raises_value_error(self):
        topo = Topology()
        topo.add_node(0, "client")
        topo.add_node(1, "client")
        with pytest.raises(ValueError):
            topo.path(0, 1)


class TestSplitRouteAttributeCaches:
    def test_loss_change_does_not_invalidate_routes(self):
        """The regression the split cache exists for: loss changes used to
        nuke the whole path cache and force full re-solves."""
        topo = generate_topology(SMALL)
        pairs = sample_pairs(topo, 60)
        for src, dst in pairs:
            topo.path(src, dst)
        solves = topo.routing_stats.dijkstra_runs
        extractions = topo.routing_stats.paths_extracted
        for index in range(0, topo.num_links, 3):
            topo.set_link_loss(index, 0.08)
        for src, dst in pairs:
            topo.path(src, dst)
        assert topo.routing_stats.dijkstra_runs == solves
        assert topo.routing_stats.paths_extracted == extractions
        assert topo.routing_stats.loss_refreshes > 0

    def test_loss_values_refresh_lazily(self):
        topo = line_topology()
        assert topo.path(0, 4).loss_rate == 0.0
        topo.set_link_loss(topo.link_between(2, 3).index, 0.25)
        assert topo.path(0, 4).loss_rate == pytest.approx(0.25)

    def test_capacity_change_refreshes_bottleneck_without_resolve(self):
        topo = line_topology()
        assert topo.path(0, 4).bottleneck_kbps == 500.0
        solves = topo.routing_stats.dijkstra_runs
        topo.set_link_capacity(topo.link_between(3, 4).index, 80.0)
        assert topo.path(0, 4).bottleneck_kbps == 80.0
        assert topo.routing_stats.dijkstra_runs == solves

    def test_escaped_path_info_is_not_mutated(self):
        """Snapshots held by flows must not change under later refreshes."""
        topo = line_topology()
        before = topo.path(0, 4)
        topo.set_link_loss(topo.link_between(0, 1).index, 0.5)
        after = topo.path(0, 4)
        assert before.loss_rate == 0.0
        assert after.loss_rate == pytest.approx(0.5)
        assert before is not after

    def test_structural_change_invalidates_routes(self):
        topo = line_topology()
        long_way = topo.path(0, 4)
        assert len(long_way.links) == 4
        # A direct shortcut must be picked up by both modes.
        topo.add_duplex_link(1, 3, LinkType.STUB_STUB, 900.0, 0.001)
        assert len(topo.path(0, 4).links) == 3
        legacy = line_topology()
        legacy.use_routing_engine = False
        legacy.path(0, 4)
        legacy.add_duplex_link(1, 3, LinkType.STUB_STUB, 900.0, 0.001)
        assert legacy.path(0, 4).links == topo.path(0, 4).links


class TestWarmBatchApi:
    def test_warm_builds_one_tree_per_source(self):
        topo = generate_topology(SMALL)
        clients = list(topo.client_nodes)[:10]
        topo.warm_routes(clients)
        assert topo.routing_stats.dijkstra_runs == len(clients)
        # Duplicate sources do not re-solve.
        topo.warm_routes(clients)
        assert topo.routing_stats.dijkstra_runs == len(clients)

    def test_warm_materializes_requested_routes(self):
        topo = generate_topology(SMALL)
        clients = list(topo.client_nodes)[:6]
        materialized = topo.warm_routes(clients, clients)
        assert materialized == len(clients) * (len(clients) - 1)
        solves = topo.routing_stats.dijkstra_runs
        for src in clients:
            for dst in clients:
                if src != dst:
                    topo.path(src, dst)
        assert topo.routing_stats.dijkstra_runs == solves
        assert topo.routing_stats.cache_hits >= materialized

    def test_warm_skips_unreachable_pairs(self):
        topo = Topology()
        topo.add_node(0, "client")
        topo.add_node(1, "client")
        assert topo.warm_routes([0], [1]) == 0

    def test_warm_is_noop_in_legacy_mode(self):
        topo = generate_topology(SMALL)
        topo.use_routing_engine = False
        assert topo.warm_routes(list(topo.client_nodes)) == 0
        assert topo.routing_stats.dijkstra_runs == 0


class TestEngineQueriesAvoidDijkstraAfterWarm:
    def test_all_queries_extract_from_warm_trees(self):
        topo = generate_topology(SMALL)
        participants = place_overlay_participants(topo, 12, seed=2)
        topo.warm_routes(participants)
        solves = topo.routing_stats.dijkstra_runs
        for src in participants:
            for dst in participants:
                if src != dst:
                    topo.path(src, dst)
        assert topo.routing_stats.dijkstra_runs == solves

    def test_clear_path_cache_resets_engine(self):
        topo = line_topology()
        topo.path(0, 4)
        topo.clear_path_cache()
        assert topo.routing.cached_route_count() == 0
        assert topo.routing.cached_tree_count() == 0
        assert_same_path(topo.path(0, 4), topo.path(0, 4))


class TestClientNodesView:
    def test_view_is_cached_and_read_only(self):
        topo = line_topology()
        view = topo.client_nodes
        assert view == (0, 4)
        assert view is topo.client_nodes
        with pytest.raises((TypeError, AttributeError)):
            view.append(9)  # type: ignore[attr-defined]

    def test_view_refreshes_when_clients_grow(self):
        topo = line_topology()
        assert topo.client_nodes == (0, 4)
        topo.add_node(9, "client")
        assert topo.client_nodes == (0, 4, 9)
