"""Hypothesis property suite: landmark latency estimation bounds.

Shortest-path RTT over symmetric duplex links is a metric, so the
triangle-inequality bracket computed from landmark coordinates must
contain the true underlay RTT for every pair — whatever topology and seed
hypothesis picks.  The suite also pins the determinism contract (same
seed, same landmarks, same estimates, independent of query order) and the
``build_estimator`` name resolution the config layer relies on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.landmarks import (
    DEFAULT_LANDMARKS,
    ESTIMATOR_NAMES,
    LandmarkLatencyEstimator,
    build_estimator,
)
from repro.util.rng import SeededRng

#: Floating-point slack for the bracket bound: coordinates are sums of the
#: same link delays the true RTT sums, in a different order.
EPS = 1e-9


def build_topology(seed: int, stub_domains: int = 4):
    config = TopologyConfig(
        transit_routers=3,
        stub_domains=stub_domains,
        routers_per_stub=3,
        clients_per_stub=3,
        extra_stub_stub_links=2,
        seed=seed,
    )
    return generate_topology(config)


def build_landmark_estimator(topology, seed: int, n_landmarks: int = 4):
    return LandmarkLatencyEstimator(
        topology, list(topology.client_nodes), seed, n_landmarks=n_landmarks
    )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=1, max_value=2**20),
    n_landmarks=st.integers(min_value=1, max_value=6),
)
def test_bracket_contains_true_rtt(seed, n_landmarks):
    topology = build_topology(seed)
    estimator = build_landmark_estimator(topology, seed, n_landmarks)
    clients = list(topology.client_nodes)
    rng = SeededRng(seed, "landmark-queries")
    for _ in range(25):
        a, b = rng.sample(clients, 2)
        true_rtt, _ = topology.round_trip(a, b)
        lower, upper = estimator.bracket(a, b)
        assert lower <= true_rtt + EPS
        assert true_rtt <= upper + EPS
        # The estimate is the bracket midpoint, hence inside the bracket,
        # hence within half the bracket width of the true RTT.
        estimate = estimator.estimate_rtt(a, b)
        assert lower - EPS <= estimate <= upper + EPS
        assert abs(estimate - true_rtt) <= 0.5 * (upper - lower) + EPS


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=1, max_value=2**20))
def test_estimates_are_symmetric_and_zero_on_self(seed):
    topology = build_topology(seed)
    estimator = build_landmark_estimator(topology, seed)
    clients = list(topology.client_nodes)
    rng = SeededRng(seed, "landmark-symmetry")
    for _ in range(15):
        a, b = rng.sample(clients, 2)
        assert estimator.estimate_rtt(a, b) == estimator.estimate_rtt(b, a)
        assert estimator.bracket(a, b) == estimator.bracket(b, a)
    node = clients[0]
    assert estimator.bracket(node, node) == (0.0, 0.0)
    assert estimator.estimate_rtt(node, node) == 0.0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=1, max_value=2**20))
def test_same_seed_is_deterministic_and_query_order_free(seed):
    topology_a = build_topology(seed)
    topology_b = build_topology(seed)
    first = build_landmark_estimator(topology_a, seed)
    second = build_landmark_estimator(topology_b, seed)
    assert first.landmarks == second.landmarks

    clients = list(topology_a.client_nodes)
    pairs = [(a, b) for a in clients[:5] for b in clients[:5]]
    forward = {pair: first.estimate_rtt(*pair) for pair in pairs}
    # Querying the same pairs in reverse order on a fresh estimator (cold
    # coordinate cache) must produce byte-identical floats.
    backward = {pair: second.estimate_rtt(*pair) for pair in reversed(pairs)}
    assert forward == backward


def test_different_seeds_can_pick_different_landmarks():
    topology = build_topology(7)
    picks = {
        build_landmark_estimator(topology, seed).landmarks for seed in range(1, 9)
    }
    assert len(picks) > 1


def test_build_estimator_resolves_names():
    topology = build_topology(3)
    clients = list(topology.client_nodes)
    assert build_estimator("exact", topology, clients, seed=3) is None
    estimator = build_estimator("landmark", topology, clients, seed=3)
    assert isinstance(estimator, LandmarkLatencyEstimator)
    assert estimator.kind == "landmark"
    assert len(estimator.landmarks) == DEFAULT_LANDMARKS
    with pytest.raises(ValueError) as excinfo:
        build_estimator("vivaldi", topology, clients, seed=3)
    for name in ESTIMATOR_NAMES:
        assert name in str(excinfo.value)


def test_estimator_rejects_degenerate_inputs():
    topology = build_topology(3)
    clients = list(topology.client_nodes)
    with pytest.raises(ValueError):
        LandmarkLatencyEstimator(topology, clients, seed=3, n_landmarks=0)
    with pytest.raises(ValueError):
        LandmarkLatencyEstimator(topology, [], seed=3)
