"""Tests for the synthetic PlanetLab-like testbed (Section 4.7)."""

import pytest

from repro.topology.planetlab import (
    PlanetLabConfig,
    build_good_tree,
    build_worst_tree,
    generate_planetlab,
    measure_available_bandwidth,
)
from repro.trees.tree import OverlayTree


class TestGeneratePlanetlab:
    def test_site_count(self):
        testbed = generate_planetlab(PlanetLabConfig(total_sites=20, europe_sites=5, seed=1))
        assert len(testbed.sites) == 20
        assert len(testbed.receivers) == 19

    def test_root_is_constrained_european(self):
        config = PlanetLabConfig(total_sites=20, europe_sites=5, seed=1)
        testbed = generate_planetlab(config)
        assert testbed.region[testbed.root] == "europe"
        assert testbed.access_kbps[testbed.root] == pytest.approx(config.root_access_kbps)

    def test_unconstrained_root_variant(self):
        config = PlanetLabConfig(total_sites=20, europe_sites=5, seed=1, unconstrained_root=True)
        testbed = generate_planetlab(config)
        assert testbed.region[testbed.root] == "us"
        assert testbed.access_kbps[testbed.root] >= config.us_access_kbps[0]

    def test_regions_assigned(self):
        config = PlanetLabConfig(total_sites=30, europe_sites=8, seed=2)
        testbed = generate_planetlab(config)
        europe = [s for s in testbed.sites if testbed.region[s] == "europe"]
        us = [s for s in testbed.sites if testbed.region[s] == "us"]
        assert len(europe) == 8
        assert len(us) == 22

    def test_topology_valid_and_routable(self):
        testbed = generate_planetlab(PlanetLabConfig(total_sites=15, europe_sites=4, seed=3))
        testbed.topology.validate()
        for site in testbed.receivers:
            assert len(testbed.topology.path(testbed.root, site).links) >= 2

    def test_rejects_bad_site_counts(self):
        with pytest.raises(ValueError):
            PlanetLabConfig(total_sites=1)
        with pytest.raises(ValueError):
            PlanetLabConfig(total_sites=10, europe_sites=11)


class TestMeasuredBandwidth:
    def test_constrained_root_limits_all_paths(self):
        config = PlanetLabConfig(total_sites=20, europe_sites=5, seed=1)
        testbed = generate_planetlab(config)
        estimates = measure_available_bandwidth(testbed)
        assert all(value <= config.root_access_kbps + 1e-9 for value in estimates.values())

    def test_estimates_cover_all_receivers(self):
        testbed = generate_planetlab(PlanetLabConfig(total_sites=12, europe_sites=3, seed=4))
        estimates = measure_available_bandwidth(testbed)
        assert set(estimates) == set(testbed.receivers)


class TestHandCraftedTrees:
    def make(self):
        return generate_planetlab(PlanetLabConfig(total_sites=25, europe_sites=6, seed=5))

    def test_good_tree_spans_all_sites(self):
        testbed = self.make()
        tree = OverlayTree(testbed.root, build_good_tree(testbed))
        assert set(tree.members()) == set(testbed.sites)

    def test_worst_tree_spans_all_sites(self):
        testbed = self.make()
        tree = OverlayTree(testbed.root, build_worst_tree(testbed))
        assert set(tree.members()) == set(testbed.sites)

    def test_good_tree_puts_best_nodes_near_root(self):
        testbed = self.make()
        estimates = measure_available_bandwidth(testbed)
        good = OverlayTree(testbed.root, build_good_tree(testbed, fanout=3))
        worst = OverlayTree(testbed.root, build_worst_tree(testbed, fanout=3))
        best_sites = sorted(estimates, key=estimates.get, reverse=True)[:3]
        worst_sites = sorted(estimates, key=estimates.get)[:3]
        assert set(good.children(testbed.root)) == set(best_sites)
        assert set(worst.children(testbed.root)) == set(worst_sites)

    def test_fanout_respected(self):
        testbed = self.make()
        tree = OverlayTree(testbed.root, build_good_tree(testbed, fanout=3))
        assert tree.max_fanout() <= 3
