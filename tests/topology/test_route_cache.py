"""Route-cache bounds (LRU eviction) and per-link delay mutation semantics."""

import pytest

from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.graph import Topology
from repro.topology.links import LinkType
from repro.util.rng import SeededRng

SMALL = TopologyConfig(
    transit_routers=3,
    stub_domains=6,
    routers_per_stub=3,
    clients_per_stub=4,
    extra_stub_stub_links=3,
    seed=11,
)


def line_topology(max_cached_routes=None):
    """client 0 -- stub 1 -- transit 2 -- stub 3 -- client 4."""
    topo = Topology(max_cached_routes=max_cached_routes)
    topo.add_node(0, "client")
    topo.add_node(1, "stub")
    topo.add_node(2, "transit")
    topo.add_node(3, "stub")
    topo.add_node(4, "client")
    topo.add_duplex_link(0, 1, LinkType.CLIENT_STUB, 1000.0, 0.001)
    topo.add_duplex_link(1, 2, LinkType.TRANSIT_STUB, 2000.0, 0.01)
    topo.add_duplex_link(2, 3, LinkType.TRANSIT_STUB, 3000.0, 0.01)
    topo.add_duplex_link(3, 4, LinkType.CLIENT_STUB, 500.0, 0.002)
    return topo


class TestRouteCacheLru:
    def test_cache_never_exceeds_the_bound(self):
        topology = generate_topology(SMALL)
        topology.routing.max_routes = 16
        clients = list(topology.client_nodes)
        rng = SeededRng(7, "lru")
        for _ in range(200):
            src, dst = rng.sample(clients, 2)
            topology.path(src, dst)
            assert topology.routing.cached_route_count() <= 16
        assert topology.routing_stats.route_evictions > 0

    def test_evicted_route_resolves_identically_on_return(self):
        topology = generate_topology(SMALL)
        reference = generate_topology(SMALL)
        topology.routing.max_routes = 4
        clients = list(topology.client_nodes)
        rng = SeededRng(9, "revisit")
        pairs = [tuple(rng.sample(clients, 2)) for _ in range(30)]
        first = {pair: topology.path(*pair) for pair in pairs}
        # Revisit in the same order: many were evicted in between.
        for pair in pairs:
            again = topology.path(*pair)
            assert again.links == first[pair].links
            ref = reference.path(*pair)
            assert again.links == ref.links
            assert again.delay_s == ref.delay_s

    def test_recency_protects_hot_routes(self):
        topology = line_topology(max_cached_routes=2)
        hot = (0, 4)
        topology.path(*hot)
        # Touch other pairs, re-touching the hot route between each: the
        # hot entry must keep surviving eviction.
        for other in ((0, 2), (1, 4), (2, 4), (1, 3)):
            topology.path(*other)
            topology.path(*hot)
        stats = topology.routing_stats
        assert stats.route_evictions > 0
        extracted_before = stats.paths_extracted
        topology.path(*hot)
        assert stats.paths_extracted == extracted_before  # still cached

    def test_default_bound_is_large(self):
        topology = line_topology()
        assert topology.routing.max_routes == 1 << 20

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            line_topology(max_cached_routes=0)

    def test_describe_reports_bound_and_evictions(self):
        topology = line_topology(max_cached_routes=2)
        for pair in ((0, 4), (0, 2), (1, 4)):
            topology.path(*pair)
        described = topology.routing.describe()
        assert described["max_routes"] == 2
        assert described["route_evictions"] >= 1


class TestSetLinkDelay:
    def test_routes_stay_pinned_but_delay_refreshes(self):
        topology = line_topology()
        before = topology.path(0, 4)
        link = topology.link_between(1, 2)
        topology.set_link_delay(link.index, 0.5)
        after = topology.path(0, 4)
        assert after.links == before.links  # fixed-routing: no re-route
        assert after.delay_s == pytest.approx(before.delay_s - 0.01 + 0.5)
        assert topology.routing_stats.delay_refreshes >= 1

    def test_routing_metric_frozen_at_first_mutation(self):
        topology = line_topology()
        link = topology.link_between(1, 2)
        assert link.routing_weight_s is None
        assert link.routing_metric_s == 0.01
        topology.set_link_delay(link.index, 0.5)
        topology.set_link_delay(link.index, 0.9)
        assert link.routing_weight_s == 0.01  # construction-time metric
        assert link.routing_metric_s == 0.01
        assert link.delay_s == 0.9

    def test_structural_growth_keeps_mutated_metric(self):
        # A structural rebuild re-runs Dijkstra; it must use the frozen
        # metric, not the mutated live delay, so routes stay stable.
        topology = line_topology()
        link = topology.link_between(2, 3)
        topology.set_link_delay(link.index, 60.0)  # huge live latency
        topology.add_node(5, "client")
        topology.add_duplex_link(3, 5, LinkType.CLIENT_STUB, 500.0, 0.002)
        path = topology.path(0, 5)
        assert link.index in path.links  # still routed over 2->3
        assert path.delay_s > 60.0  # but the aggregate reflects the mutation

    def test_legacy_mode_sees_identical_aggregates(self):
        engine_topo = line_topology()
        legacy_topo = line_topology()
        legacy_topo.use_routing_engine = False
        for topo in (engine_topo, legacy_topo):
            topo.path(0, 4)
            topo.set_link_delay(topo.link_between(1, 2).index, 0.25)
        a = engine_topo.path(0, 4)
        b = legacy_topo.path(0, 4)
        assert a.links == b.links
        assert a.delay_s == b.delay_s
        assert a.loss_rate == b.loss_rate
        assert a.bottleneck_kbps == b.bottleneck_kbps

    def test_rejects_bad_delay(self):
        topology = line_topology()
        link = topology.link_between(0, 1)
        with pytest.raises(ValueError):
            topology.set_link_delay(link.index, 0.0)
