"""Tests for the Section 4.5 loss model."""

import pytest

from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.links import LinkType
from repro.topology.loss import LossConfig, apply_loss_model, clear_loss


def make_topology(seed=5):
    return generate_topology(
        TopologyConfig(
            transit_routers=4, stub_domains=8, routers_per_stub=3, clients_per_stub=4, seed=seed
        )
    )


class TestLossConfig:
    def test_defaults_match_paper(self):
        config = LossConfig()
        assert config.non_transit_max == pytest.approx(0.003)
        assert config.transit_max == pytest.approx(0.001)
        assert config.overloaded_fraction == pytest.approx(0.05)
        assert config.overloaded_min == pytest.approx(0.05)
        assert config.overloaded_max == pytest.approx(0.10)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            LossConfig(overloaded_fraction=1.5)

    def test_rejects_inverted_overload_range(self):
        with pytest.raises(ValueError):
            LossConfig(overloaded_min=0.2, overloaded_max=0.1)


class TestApplyLossModel:
    def test_all_losses_within_bounds(self):
        topo = make_topology()
        apply_loss_model(topo, LossConfig(seed=1))
        for link in topo.links:
            assert 0.0 <= link.loss_rate <= 0.10 + 1e-9

    def test_non_overloaded_links_respect_class_caps(self):
        topo = make_topology()
        config = LossConfig(seed=1)
        apply_loss_model(topo, config)
        overloaded = [link for link in topo.links if link.loss_rate >= config.overloaded_min]
        normal = [link for link in topo.links if link.loss_rate < config.overloaded_min]
        for link in normal:
            cap = (
                config.transit_max
                if link.link_type == LinkType.TRANSIT_TRANSIT
                else config.non_transit_max
            )
            assert link.loss_rate <= cap + 1e-12

    def test_overloaded_fraction_approximate(self):
        topo = make_topology()
        config = LossConfig(seed=1)
        apply_loss_model(topo, config)
        overloaded = sum(1 for link in topo.links if link.loss_rate >= config.overloaded_min)
        expected = round(config.overloaded_fraction * topo.num_links)
        assert abs(overloaded - expected) <= max(2, expected // 2)

    def test_deterministic(self):
        a, b = make_topology(), make_topology()
        apply_loss_model(a, LossConfig(seed=9))
        apply_loss_model(b, LossConfig(seed=9))
        assert [l.loss_rate for l in a.links] == [l.loss_rate for l in b.links]

    def test_clear_loss(self):
        topo = make_topology()
        apply_loss_model(topo, LossConfig(seed=2))
        clear_loss(topo)
        assert all(link.loss_rate == 0.0 for link in topo.links)

    def test_paths_become_lossy(self):
        topo = make_topology()
        clients = topo.client_nodes
        apply_loss_model(topo, LossConfig(seed=3))
        lossy_paths = sum(
            1 for other in clients[1:10] if topo.path(clients[0], other).loss_rate > 0
        )
        assert lossy_paths > 0
