"""Tests for transit-stub topology generation and participant placement."""

import pytest

from repro.topology.generator import (
    TopologyConfig,
    generate_topology,
    place_overlay_participants,
)
from repro.topology.links import BandwidthClass, LinkType, TABLE_1_RANGES


SMALL = TopologyConfig(
    transit_routers=4,
    stub_domains=6,
    routers_per_stub=3,
    clients_per_stub=4,
    extra_stub_stub_links=3,
    bandwidth_class=BandwidthClass.MEDIUM,
    seed=11,
)


class TestTopologyConfig:
    def test_total_clients(self):
        assert SMALL.total_clients == 24

    def test_rejects_zero_transit(self):
        with pytest.raises(ValueError):
            TopologyConfig(transit_routers=0)

    def test_rejects_zero_stub_domains(self):
        with pytest.raises(ValueError):
            TopologyConfig(stub_domains=0)

    def test_rejects_negative_clients(self):
        with pytest.raises(ValueError):
            TopologyConfig(clients_per_stub=-1)


class TestGenerateTopology:
    def test_counts(self):
        topo = generate_topology(SMALL)
        assert len(topo.client_nodes) == SMALL.total_clients
        expected_nodes = (
            SMALL.transit_routers
            + SMALL.stub_domains * SMALL.routers_per_stub
            + SMALL.total_clients
        )
        assert topo.num_nodes == expected_nodes

    def test_connected_and_valid(self):
        topo = generate_topology(SMALL)
        topo.validate()

    def test_every_client_has_single_uplink(self):
        topo = generate_topology(SMALL)
        for client in topo.client_nodes:
            assert topo.graph.out_degree(client) == 1

    def test_all_link_types_present(self):
        topo = generate_topology(SMALL)
        present = {link.link_type for link in topo.links}
        assert present == set(LinkType)

    def test_capacities_within_table1(self):
        topo = generate_topology(SMALL)
        ranges = TABLE_1_RANGES[SMALL.bandwidth_class]
        for link in topo.links:
            low, high = ranges[link.link_type]
            assert low <= link.capacity_kbps <= high

    def test_deterministic_for_seed(self):
        a = generate_topology(SMALL)
        b = generate_topology(SMALL)
        assert a.num_nodes == b.num_nodes
        assert [round(l.capacity_kbps, 6) for l in a.links] == [
            round(l.capacity_kbps, 6) for l in b.links
        ]

    def test_different_seed_changes_capacities(self):
        other = TopologyConfig(
            transit_routers=4, stub_domains=6, routers_per_stub=3, clients_per_stub=4, seed=99
        )
        a = generate_topology(SMALL)
        b = generate_topology(other)
        assert [l.capacity_kbps for l in a.links] != [l.capacity_kbps for l in b.links]

    def test_client_routes_cross_topology(self):
        topo = generate_topology(SMALL)
        clients = topo.client_nodes
        info = topo.path(clients[0], clients[-1])
        assert len(info.links) >= 2

    def test_bandwidth_class_changes_capacities(self):
        low_config = TopologyConfig(
            transit_routers=4, stub_domains=6, routers_per_stub=3, clients_per_stub=4,
            bandwidth_class=BandwidthClass.LOW, seed=11,
        )
        low_topo = generate_topology(low_config)
        medium_topo = generate_topology(SMALL)
        low_avg = sum(l.capacity_kbps for l in low_topo.links) / low_topo.num_links
        medium_avg = sum(l.capacity_kbps for l in medium_topo.links) / medium_topo.num_links
        assert low_avg < medium_avg


class TestPlacement:
    def test_places_requested_count(self):
        topo = generate_topology(SMALL)
        participants = place_overlay_participants(topo, 10, seed=3)
        assert len(participants) == 10
        assert len(set(participants)) == 10
        assert all(topo.node_role(node) == "client" for node in participants)

    def test_rejects_too_many(self):
        topo = generate_topology(SMALL)
        with pytest.raises(ValueError):
            place_overlay_participants(topo, SMALL.total_clients + 1)

    def test_deterministic(self):
        topo = generate_topology(SMALL)
        assert place_overlay_participants(topo, 8, seed=5) == place_overlay_participants(
            topo, 8, seed=5
        )
