"""Tests for Table 1 bandwidth classes and link specs."""

import pytest
from hypothesis import given, strategies as st

from repro.topology.links import (
    BandwidthClass,
    LinkSpec,
    LinkType,
    TABLE_1_RANGES,
    bandwidth_range,
    sample_capacity,
    sample_delay,
)
from repro.util.rng import SeededRng


class TestTable1:
    def test_all_classes_and_types_present(self):
        for bandwidth_class in BandwidthClass:
            for link_type in LinkType:
                low, high = bandwidth_range(bandwidth_class, link_type)
                assert 0 < low <= high

    def test_exact_paper_values_medium(self):
        assert bandwidth_range(BandwidthClass.MEDIUM, LinkType.CLIENT_STUB) == (800.0, 2800.0)
        assert bandwidth_range(BandwidthClass.MEDIUM, LinkType.STUB_STUB) == (1000.0, 4000.0)
        assert bandwidth_range(BandwidthClass.MEDIUM, LinkType.TRANSIT_STUB) == (1000.0, 4000.0)
        assert bandwidth_range(BandwidthClass.MEDIUM, LinkType.TRANSIT_TRANSIT) == (5000.0, 10000.0)

    def test_exact_paper_values_low_and_high(self):
        assert bandwidth_range(BandwidthClass.LOW, LinkType.CLIENT_STUB) == (300.0, 600.0)
        assert bandwidth_range(BandwidthClass.LOW, LinkType.TRANSIT_TRANSIT) == (2000.0, 4000.0)
        assert bandwidth_range(BandwidthClass.HIGH, LinkType.CLIENT_STUB) == (1600.0, 5600.0)
        assert bandwidth_range(BandwidthClass.HIGH, LinkType.TRANSIT_TRANSIT) == (10000.0, 20000.0)

    def test_classes_ordered_low_to_high(self):
        for link_type in LinkType:
            low = bandwidth_range(BandwidthClass.LOW, link_type)
            medium = bandwidth_range(BandwidthClass.MEDIUM, link_type)
            high = bandwidth_range(BandwidthClass.HIGH, link_type)
            assert low[1] <= medium[1] <= high[1]

    def test_sample_capacity_within_range(self):
        rng = SeededRng(1)
        for bandwidth_class in BandwidthClass:
            for link_type in LinkType:
                low, high = TABLE_1_RANGES[bandwidth_class][link_type]
                for _ in range(20):
                    value = sample_capacity(bandwidth_class, link_type, rng)
                    assert low <= value <= high

    def test_sample_delay_positive(self):
        rng = SeededRng(2)
        for link_type in LinkType:
            assert sample_delay(link_type, rng) > 0


class TestLinkSpec:
    def test_valid_spec(self):
        spec = LinkSpec(0, 1, LinkType.CLIENT_STUB, 1000.0, 0.01)
        assert spec.loss_rate == 0.0

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            LinkSpec(0, 1, LinkType.CLIENT_STUB, 0.0, 0.01)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            LinkSpec(0, 1, LinkType.CLIENT_STUB, 100.0, -0.01)

    @given(st.floats(min_value=1.0, max_value=1.5))
    def test_rejects_invalid_loss(self, loss):
        with pytest.raises(ValueError):
            LinkSpec(0, 1, LinkType.CLIENT_STUB, 100.0, 0.01, loss_rate=loss)
