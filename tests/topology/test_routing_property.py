"""Hypothesis property suite: RoutingEngine == networkx reference.

Two topologies are generated identically; one routes through the engine,
the other through the legacy per-pair networkx resolution.  Whatever
interleaving of loss/capacity mutations and structural growth hypothesis
picks, every queried pair must agree on links, delay, loss and bottleneck —
and attribute mutations must never trigger route re-solves in the engine.
"""

from hypothesis import given, settings, strategies as st

from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.links import LinkType
from repro.util.rng import SeededRng


def build_pair(seed: int, stub_domains: int):
    config = TopologyConfig(
        transit_routers=3,
        stub_domains=stub_domains,
        routers_per_stub=3,
        clients_per_stub=3,
        extra_stub_stub_links=2,
        seed=seed,
    )
    engine_topo = generate_topology(config)
    legacy_topo = generate_topology(config)
    legacy_topo.use_routing_engine = False
    return engine_topo, legacy_topo


def assert_equivalent(engine_topo, legacy_topo, seed: int, queries: int = 40):
    clients = list(engine_topo.client_nodes)
    rng = SeededRng(seed, "queries")
    for _ in range(queries):
        src, dst = rng.sample(clients, 2)
        a = engine_topo.path(src, dst)
        b = legacy_topo.path(src, dst)
        assert a.links == b.links
        assert a.delay_s == b.delay_s
        assert a.loss_rate == b.loss_rate
        assert a.bottleneck_kbps == b.bottleneck_kbps
        assert engine_topo.round_trip(src, dst) == legacy_topo.round_trip(src, dst)


#: One mutation: ("loss", link_fraction, rate) | ("capacity", link_fraction,
#: kbps) | ("grow", attach_fraction, _) — applied identically to both modes.
mutations = st.lists(
    st.tuples(
        st.sampled_from(["loss", "capacity", "grow"]),
        st.floats(min_value=0.0, max_value=0.999),
        st.floats(min_value=0.001, max_value=0.3),
    ),
    max_size=6,
)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=1, max_value=2**20),
    stub_domains=st.integers(min_value=3, max_value=7),
    steps=mutations,
)
def test_engine_equivalent_to_networkx_under_mutations(seed, stub_domains, steps):
    engine_topo, legacy_topo = build_pair(seed, stub_domains)
    assert_equivalent(engine_topo, legacy_topo, seed)
    next_node = engine_topo.num_nodes
    for kind, position, magnitude in steps:
        if kind == "loss":
            index = int(position * engine_topo.num_links) % engine_topo.num_links
            engine_topo.set_link_loss(index, magnitude)
            legacy_topo.set_link_loss(index, magnitude)
        elif kind == "capacity":
            index = int(position * engine_topo.num_links) % engine_topo.num_links
            engine_topo.set_link_capacity(index, 100.0 + 5000.0 * magnitude)
            legacy_topo.set_link_capacity(index, 100.0 + 5000.0 * magnitude)
        else:  # grow: attach a fresh client host to an existing stub router
            stubs = [
                node
                for node in range(engine_topo.num_nodes)
                if engine_topo.node_role(node) == "stub"
            ]
            attach = stubs[int(position * len(stubs)) % len(stubs)]
            for topo in (engine_topo, legacy_topo):
                topo.add_node(next_node, "client")
                topo.add_duplex_link(
                    next_node, attach, LinkType.CLIENT_STUB, 1000.0, 0.001 + magnitude / 100.0
                )
            next_node += 1
        assert_equivalent(engine_topo, legacy_topo, seed + next_node, queries=15)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=1, max_value=2**20),
    loss_rounds=st.integers(min_value=1, max_value=4),
)
def test_attribute_mutations_never_resolve_routes(seed, loss_rounds):
    """Property form of the split-cache regression guard."""
    engine_topo, _ = build_pair(seed, 4)
    clients = list(engine_topo.client_nodes)
    rng = SeededRng(seed, "pairs")
    pairs = [tuple(rng.sample(clients, 2)) for _ in range(25)]
    for src, dst in pairs:
        engine_topo.path(src, dst)
    solves = engine_topo.routing_stats.dijkstra_runs
    extractions = engine_topo.routing_stats.paths_extracted
    for round_index in range(loss_rounds):
        for index in range(round_index, engine_topo.num_links, 4):
            engine_topo.set_link_loss(index, 0.01 * (round_index + 1))
            engine_topo.set_link_capacity(index, 500.0 + 100.0 * round_index)
        for src, dst in pairs:
            engine_topo.path(src, dst)
    assert engine_topo.routing_stats.dijkstra_runs == solves
    assert engine_topo.routing_stats.paths_extracted == extractions
