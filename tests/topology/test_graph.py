"""Tests for the Topology graph, routing and path properties."""

import pytest

from repro.topology.graph import Topology, iter_path_links
from repro.topology.links import LinkType


def build_line_topology():
    """client 0 -- stub 1 -- transit 2 -- stub 3 -- client 4."""
    topo = Topology()
    topo.add_node(0, "client")
    topo.add_node(1, "stub")
    topo.add_node(2, "transit")
    topo.add_node(3, "stub")
    topo.add_node(4, "client")
    topo.add_duplex_link(0, 1, LinkType.CLIENT_STUB, 1000.0, 0.001)
    topo.add_duplex_link(1, 2, LinkType.TRANSIT_STUB, 2000.0, 0.01)
    topo.add_duplex_link(2, 3, LinkType.TRANSIT_STUB, 3000.0, 0.01)
    topo.add_duplex_link(3, 4, LinkType.CLIENT_STUB, 500.0, 0.002)
    return topo


class TestTopologyBuild:
    def test_node_roles(self):
        topo = build_line_topology()
        assert topo.node_role(0) == "client"
        assert topo.node_role(2) == "transit"
        # client_nodes is a cached read-only view (a tuple, not a copy).
        assert topo.client_nodes == (0, 4)
        assert topo.client_nodes is topo.client_nodes

    def test_duplicate_link_rejected(self):
        topo = build_line_topology()
        with pytest.raises(ValueError):
            topo.add_link(0, 1, LinkType.CLIENT_STUB, 100.0, 0.001)

    def test_unknown_node_rejected(self):
        topo = build_line_topology()
        with pytest.raises(KeyError):
            topo.add_link(0, 99, LinkType.CLIENT_STUB, 100.0, 0.001)

    def test_unknown_role_rejected(self):
        topo = Topology()
        with pytest.raises(ValueError):
            topo.add_node(0, "satellite")

    def test_link_between(self):
        topo = build_line_topology()
        assert topo.link_between(0, 1) is not None
        assert topo.link_between(0, 4) is None

    def test_describe_counts(self):
        topo = build_line_topology()
        summary = topo.describe()
        assert summary["nodes"] == 5
        assert summary["links"] == 8
        assert summary["clients"] == 2

    def test_validate_accepts_well_formed(self):
        build_line_topology().validate()

    def test_validate_rejects_multi_homed_client(self):
        topo = build_line_topology()
        topo.add_duplex_link(0, 3, LinkType.CLIENT_STUB, 100.0, 0.001)
        with pytest.raises(ValueError):
            topo.validate()


class TestRouting:
    def test_path_links_ordered(self):
        topo = build_line_topology()
        info = topo.path(0, 4)
        links = [topo.link(index) for index in info.links]
        assert [link.src for link in links] == [0, 1, 2, 3]
        assert [link.dst for link in links] == [1, 2, 3, 4]

    def test_path_delay_is_sum(self):
        topo = build_line_topology()
        info = topo.path(0, 4)
        assert info.delay_s == pytest.approx(0.001 + 0.01 + 0.01 + 0.002)

    def test_path_bottleneck(self):
        topo = build_line_topology()
        assert topo.path(0, 4).bottleneck_kbps == pytest.approx(500.0)

    def test_self_path_is_empty(self):
        topo = build_line_topology()
        info = topo.path(2, 2)
        assert info.links == ()
        assert info.loss_rate == 0.0

    def test_path_loss_composes(self):
        topo = build_line_topology()
        topo.set_link_loss(topo.link_between(0, 1).index, 0.1)
        topo.set_link_loss(topo.link_between(1, 2).index, 0.1)
        info = topo.path(0, 4)
        assert info.loss_rate == pytest.approx(1 - 0.9 * 0.9)

    def test_round_trip_sums_both_directions(self):
        topo = build_line_topology()
        rtt, loss = topo.round_trip(0, 4)
        assert rtt == pytest.approx(2 * (0.001 + 0.01 + 0.01 + 0.002))
        assert loss == 0.0

    def test_set_link_loss_invalidates_cache(self):
        topo = build_line_topology()
        before = topo.path(0, 4).loss_rate
        topo.set_link_loss(topo.link_between(2, 3).index, 0.2)
        after = topo.path(0, 4).loss_rate
        assert before == 0.0 and after == pytest.approx(0.2)

    def test_no_route_raises(self):
        topo = Topology()
        topo.add_node(0, "client")
        topo.add_node(1, "client")
        with pytest.raises(ValueError):
            topo.path(0, 1)

    def test_iter_path_links(self):
        topo = build_line_topology()
        links = list(iter_path_links(topo, 4, 0))
        assert [link.src for link in links] == [4, 3, 2, 1]


class TestCapacityMap:
    def test_capacity_map_matches_links(self):
        topo = build_line_topology()
        capacities = topo.capacity_map()
        assert len(capacities) == topo.num_links
        for link in topo.links:
            assert capacities[link.index] == link.capacity_kbps

    def test_capacity_map_is_cached(self):
        topo = build_line_topology()
        assert topo.capacity_map() is topo.capacity_map()

    def test_add_link_bumps_version_and_invalidates(self):
        topo = build_line_topology()
        first = topo.capacity_map()
        version = topo.capacity_version
        topo.add_node(99, "client")
        topo.add_link(99, 0, LinkType.CLIENT_STUB, 777.0, 0.01)
        assert topo.capacity_version > version
        second = topo.capacity_map()
        assert second is not first
        assert second[topo.link_between(99, 0).index] == 777.0

    def test_set_link_capacity(self):
        topo = build_line_topology()
        index = topo.link_between(0, 1).index
        bottleneck_before = topo.path(0, 2).bottleneck_kbps
        version = topo.capacity_version
        topo.set_link_capacity(index, 123.0)
        assert topo.capacity_version > version
        assert topo.capacity_map()[index] == 123.0
        assert topo.link(index).capacity_kbps == 123.0
        # Cached routes embedding the old bottleneck are dropped.
        assert topo.path(0, 2).bottleneck_kbps != bottleneck_before
        assert topo.path(0, 2).bottleneck_kbps == 123.0

    def test_set_link_capacity_rejects_nonpositive(self):
        topo = build_line_topology()
        with pytest.raises(ValueError):
            topo.set_link_capacity(0, 0.0)
