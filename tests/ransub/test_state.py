"""Tests for RanSub wire-level state objects."""

from repro.ransub.state import (
    CollectSet,
    DEFAULT_SET_SIZE,
    DistributeSet,
    MemberSummary,
    MESSAGE_HEADER_BYTES,
    RanSubView,
)
from repro.reconcile.summary_ticket import SummaryTicket


def summary(node, sequences=()):
    return MemberSummary(node=node, ticket=SummaryTicket.from_working_set(sequences, seed=0))


class TestMemberSummary:
    def test_wire_size_includes_ticket(self):
        member = summary(1, range(10))
        assert member.size_bytes() == 8 + member.ticket.size_bytes()


class TestCollectSet:
    def test_default_population(self):
        collect = CollectSet(sender=3)
        assert collect.population == 1
        assert collect.size_bytes() == MESSAGE_HEADER_BYTES

    def test_size_grows_with_summaries(self):
        small = CollectSet(sender=1, summaries=[summary(2)])
        large = CollectSet(sender=1, summaries=[summary(2), summary(3), summary(4)])
        assert large.size_bytes() > small.size_bytes()


class TestDistributeSet:
    def test_members_listed(self):
        distribute = DistributeSet(recipient=5, summaries=[summary(1), summary(2)])
        assert distribute.members() == [1, 2]

    def test_default_set_size_is_paper_value(self):
        assert DEFAULT_SET_SIZE == 10


class TestRanSubView:
    def test_candidates_exclude_requested_nodes(self):
        view = RanSubView(
            epoch=2,
            summaries={1: summary(1), 2: summary(2), 3: summary(3)},
        )
        candidates = view.candidates(exclude=[2])
        assert set(candidates) == {1, 3}
        assert all(isinstance(ticket, SummaryTicket) for ticket in candidates.values())

    def test_candidates_without_exclusion(self):
        view = RanSubView(epoch=1, summaries={7: summary(7)})
        assert set(view.candidates()) == {7}
