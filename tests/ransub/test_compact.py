"""Tests for the Compact operation."""

from collections import Counter

import pytest

from repro.ransub.compact import compact
from repro.ransub.state import MemberSummary
from repro.reconcile.summary_ticket import SummaryTicket
from repro.util.rng import SeededRng


def summary(node):
    return MemberSummary(node=node, ticket=SummaryTicket.from_working_set([node], seed=0))


def summaries(nodes):
    return [summary(node) for node in nodes]


class TestCompact:
    def test_small_union_kept_entirely(self):
        rng = SeededRng(1)
        merged, population = compact(
            [(summaries([1, 2]), 2), (summaries([3]), 1)], set_size=10, rng=rng
        )
        assert sorted(s.node for s in merged) == [1, 2, 3]
        assert population == 3

    def test_output_size_fixed(self):
        rng = SeededRng(2)
        merged, _ = compact(
            [(summaries(range(0, 20)), 20), (summaries(range(100, 120)), 20)],
            set_size=10,
            rng=rng,
        )
        assert len(merged) == 10

    def test_no_duplicate_members(self):
        rng = SeededRng(3)
        merged, _ = compact(
            [(summaries([1, 2, 3]), 3), (summaries([2, 3, 4]), 3)], set_size=3, rng=rng
        )
        nodes = [s.node for s in merged]
        assert len(nodes) == len(set(nodes))

    def test_population_sums(self):
        rng = SeededRng(4)
        _, population = compact(
            [(summaries([1]), 50), (summaries([2]), 150)], set_size=5, rng=rng
        )
        assert population == 200

    def test_empty_inputs(self):
        rng = SeededRng(5)
        merged, population = compact([], set_size=5, rng=rng)
        assert merged == []
        assert population == 0

    def test_empty_subsets_contribute_population_only(self):
        rng = SeededRng(6)
        merged, population = compact(
            [([], 10), (summaries([7]), 1)], set_size=5, rng=rng
        )
        assert [s.node for s in merged] == [7]
        assert population == 11

    def test_rejects_bad_set_size(self):
        with pytest.raises(ValueError):
            compact([(summaries([1]), 1)], set_size=0, rng=SeededRng(7))

    def test_weighting_is_approximately_uniform_over_union(self):
        """Subsets representing larger populations contribute proportionally more.

        Subset A stands for 10 nodes, subset B for 90: over many Compact
        invocations, members of B should appear roughly nine times as often.
        """
        a = summaries(range(0, 10))
        b = summaries(range(100, 110))
        counts = Counter()
        for trial in range(300):
            rng = SeededRng(trial)
            merged, _ = compact([(a, 10), (b, 90)], set_size=4, rng=rng)
            for member in merged:
                counts["a" if member.node < 100 else "b"] += 1
        assert counts["b"] > counts["a"] * 2

    def test_deterministic_given_rng(self):
        subsets = [(summaries(range(0, 30)), 30), (summaries(range(50, 80)), 30)]
        merged_1, _ = compact(subsets, set_size=8, rng=SeededRng(42))
        merged_2, _ = compact(subsets, set_size=8, rng=SeededRng(42))
        assert [s.node for s in merged_1] == [s.node for s in merged_2]
