"""Tests for the RanSub collect/distribute protocol."""

import pytest

from repro.ransub.protocol import RanSubProtocol
from repro.ransub.state import MemberSummary
from repro.reconcile.summary_ticket import SummaryTicket
from repro.trees.random_tree import build_balanced_tree


def make_tree(n=15, fanout=2):
    members = list(range(n))
    return build_balanced_tree(0, members, fanout=fanout)


def state_provider(node):
    return MemberSummary(node=node, ticket=SummaryTicket.from_working_set([node], seed=0))


class TestRanSubEpoch:
    def test_every_node_gets_a_view(self):
        tree = make_tree(15)
        protocol = RanSubProtocol(tree, state_provider, set_size=5, seed=1)
        result = protocol.run_epoch()
        assert result.completed
        assert set(result.views) == set(tree.members())

    def test_views_exclude_descendants(self):
        tree = make_tree(15)
        protocol = RanSubProtocol(tree, state_provider, set_size=5, seed=2)
        result = protocol.run_epoch()
        for node, view in result.views.items():
            descendants = set(tree.descendants(node))
            for member in view.summaries:
                assert member not in descendants
                assert member != node

    def test_view_sizes_bounded_by_set_size(self):
        tree = make_tree(31)
        protocol = RanSubProtocol(tree, state_provider, set_size=6, seed=3)
        result = protocol.run_epoch()
        for view in result.views.values():
            assert len(view.summaries) <= 6

    def test_leaves_eventually_see_many_distinct_nodes(self):
        """Over epochs the changing random subsets cover much of the membership."""
        tree = make_tree(31)
        protocol = RanSubProtocol(tree, state_provider, set_size=5, seed=4)
        leaf = tree.leaves()[0]
        seen = set()
        for _ in range(12):
            result = protocol.run_epoch()
            seen.update(result.views[leaf].summaries.keys())
        non_descendants = set(tree.non_descendants(leaf))
        assert len(seen) >= len(non_descendants) // 2

    def test_descendant_counts(self):
        tree = make_tree(15, fanout=2)
        protocol = RanSubProtocol(tree, state_provider, seed=5)
        result = protocol.run_epoch()
        root_counts = result.descendant_counts[0]
        # A balanced binary tree of 15 nodes: each root child subtree has 7 nodes.
        assert sorted(root_counts.values()) == [7, 7]

    def test_epoch_counter_increments(self):
        tree = make_tree(7)
        protocol = RanSubProtocol(tree, state_provider, seed=6)
        protocol.run_epoch()
        protocol.run_epoch()
        assert protocol.epoch == 2

    def test_control_overhead_charged(self):
        tree = make_tree(15)
        charged = {}
        protocol = RanSubProtocol(
            tree,
            state_provider,
            set_size=5,
            seed=7,
            overhead_sink=lambda node, n: charged.__setitem__(node, charged.get(node, 0) + n),
        )
        protocol.run_epoch()
        assert charged
        assert all(value > 0 for value in charged.values())

    def test_rejects_bad_set_size(self):
        with pytest.raises(ValueError):
            RanSubProtocol(make_tree(7), state_provider, set_size=0)


class TestRanSubFailure:
    def test_failure_without_detection_stalls(self):
        tree = make_tree(15)
        protocol = RanSubProtocol(tree, state_provider, seed=8, failure_detection=False)
        protocol.run_epoch()
        result = protocol.run_epoch(failed_nodes={tree.children(0)[0]})
        assert not result.completed
        assert result.views == {}

    def test_failure_with_detection_routes_around_subtree(self):
        tree = make_tree(15)
        protocol = RanSubProtocol(tree, state_provider, seed=9, failure_detection=True)
        failed_child = tree.children(0)[0]
        result = protocol.run_epoch(failed_nodes={failed_child})
        assert result.completed
        cut_off = set(tree.subtree(failed_child))
        # Nodes outside the failed subtree still receive views.
        for node in tree.members():
            if node not in cut_off:
                assert node in result.views
        # Nodes inside the failed subtree do not (their tree path is gone).
        for node in cut_off:
            assert node not in result.views

    def test_failed_root_aborts(self):
        tree = make_tree(7)
        protocol = RanSubProtocol(tree, state_provider, seed=10)
        result = protocol.run_epoch(failed_nodes={0})
        assert not result.completed

    def test_views_persist_across_stalled_epochs(self):
        tree = make_tree(15)
        protocol = RanSubProtocol(tree, state_provider, seed=11, failure_detection=False)
        protocol.run_epoch()
        before = dict(protocol.views)
        protocol.run_epoch(failed_nodes={tree.children(0)[0]})
        assert protocol.views == before
