"""Tests for the failure injector."""

import pytest

from repro.failure.injector import FailureInjector, worst_case_victim
from repro.trees.random_tree import build_balanced_tree
from repro.trees.tree import OverlayTree


class RecordingDriver:
    def __init__(self):
        self.failed = []

    def fail_node(self, node):
        self.failed.append(node)


class TestWorstCaseVictim:
    def test_largest_subtree_selected(self):
        tree = OverlayTree(0, {1: 0, 2: 0, 3: 1, 4: 1, 5: 1, 6: 2})
        assert worst_case_victim(tree) == 1

    def test_tie_broken_deterministically(self):
        tree = build_balanced_tree(0, list(range(7)), fanout=2)
        assert worst_case_victim(tree) in tree.children(0)
        assert worst_case_victim(tree) == worst_case_victim(tree)

    def test_root_without_children_rejected(self):
        tree = OverlayTree(0, {})
        with pytest.raises(ValueError):
            worst_case_victim(tree)


class TestFailureInjector:
    def test_fires_at_scheduled_time(self):
        driver = RecordingDriver()
        injector = FailureInjector(driver)
        event = injector.schedule_failure(7, at_time_s=10.0)
        assert injector.tick(5.0) == 0
        assert driver.failed == []
        assert injector.tick(10.0) == 1
        assert driver.failed == [7]
        assert event.fired

    def test_fires_only_once(self):
        driver = RecordingDriver()
        injector = FailureInjector(driver)
        injector.schedule_failure(3, at_time_s=1.0)
        injector.tick(2.0)
        injector.tick(3.0)
        assert driver.failed == [3]

    def test_schedule_worst_case(self):
        driver = RecordingDriver()
        injector = FailureInjector(driver)
        tree = OverlayTree(0, {1: 0, 2: 0, 3: 2, 4: 2})
        event = injector.schedule_worst_case(tree, at_time_s=5.0)
        assert event.node == 2
        injector.tick(6.0)
        assert driver.failed == [2]

    def test_pending_count(self):
        injector = FailureInjector(RecordingDriver())
        injector.schedule_failure(1, 5.0)
        injector.schedule_failure(2, 8.0)
        assert injector.pending() == 2
        injector.tick(6.0)
        assert injector.pending() == 1

    def test_multiple_failures(self):
        driver = RecordingDriver()
        injector = FailureInjector(driver)
        injector.schedule_failure(1, 2.0)
        injector.schedule_failure(2, 4.0)
        injector.tick(10.0)
        assert driver.failed == [1, 2]
