"""Tests for resemblance estimation and peer ranking."""

import pytest
from hypothesis import given, strategies as st

from repro.reconcile.resemblance import (
    estimated_resemblance,
    expected_useful_fraction,
    jaccard_similarity,
    rank_peers_by_divergence,
)
from repro.reconcile.summary_ticket import SummaryTicket


class TestJaccard:
    def test_identical(self):
        assert jaccard_similarity([1, 2, 3], [1, 2, 3]) == 1.0

    def test_disjoint(self):
        assert jaccard_similarity([1, 2], [3, 4]) == 0.0

    def test_partial(self):
        assert jaccard_similarity([1, 2, 3], [2, 3, 4]) == pytest.approx(0.5)

    def test_both_empty(self):
        assert jaccard_similarity([], []) == 1.0

    @given(st.sets(st.integers(0, 100)), st.sets(st.integers(0, 100)))
    def test_bounds(self, a, b):
        assert 0.0 <= jaccard_similarity(a, b) <= 1.0

    @given(st.sets(st.integers(0, 100), min_size=1))
    def test_self_similarity(self, a):
        assert jaccard_similarity(a, a) == 1.0


class TestRanking:
    def test_most_divergent_first(self):
        own = SummaryTicket.from_working_set(range(0, 200), seed=1)
        similar = SummaryTicket.from_working_set(range(0, 190), seed=1)
        divergent = SummaryTicket.from_working_set(range(5000, 5200), seed=1)
        ranked = rank_peers_by_divergence(own, {10: similar, 20: divergent})
        assert ranked[0][0] == 20
        assert ranked[0][1] <= ranked[1][1]

    def test_tie_broken_by_id(self):
        own = SummaryTicket.from_working_set(range(100), seed=2)
        a = SummaryTicket.from_working_set(range(100), seed=2)
        b = SummaryTicket.from_working_set(range(100), seed=2)
        ranked = rank_peers_by_divergence(own, {7: a, 3: b})
        assert [peer for peer, _ in ranked] == [3, 7]

    def test_empty_candidates(self):
        own = SummaryTicket.from_working_set(range(10), seed=1)
        assert rank_peers_by_divergence(own, {}) == []

    def test_estimated_resemblance_matches_ticket_method(self):
        a = SummaryTicket.from_working_set(range(50), seed=3)
        b = SummaryTicket.from_working_set(range(25, 75), seed=3)
        assert estimated_resemblance(a, b) == a.resemblance(b)


class TestExpectedUsefulFraction:
    def test_all_useful(self):
        assert expected_useful_fraction([1, 2], [3, 4]) == 1.0

    def test_none_useful(self):
        assert expected_useful_fraction([1, 2, 3], [1, 2]) == 0.0

    def test_empty_remote(self):
        assert expected_useful_fraction([1], []) == 0.0

    def test_divergence_correlates_with_usefulness(self):
        """Lower resemblance should predict a higher useful fraction."""
        own = list(range(0, 300))
        similar_remote = list(range(10, 310))
        divergent_remote = list(range(5000, 5300))
        own_ticket = SummaryTicket.from_working_set(own, seed=5)
        similar_ticket = SummaryTicket.from_working_set(similar_remote, seed=5)
        divergent_ticket = SummaryTicket.from_working_set(divergent_remote, seed=5)
        assert estimated_resemblance(own_ticket, divergent_ticket) < estimated_resemblance(
            own_ticket, similar_ticket
        )
        assert expected_useful_fraction(own, divergent_remote) > expected_useful_fraction(
            own, similar_remote
        )
