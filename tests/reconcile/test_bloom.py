"""Tests for Bloom filters and the FIFO (sliding-window) variant."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.reconcile.bloom import BloomFilter, FifoBloomFilter, optimal_parameters


class TestOptimalParameters:
    def test_reasonable_sizing(self):
        bits, hashes = optimal_parameters(1000, 0.01)
        # Classic result: ~9.6 bits per element, ~7 hash functions at 1% FP.
        assert 9000 < bits < 11000
        assert 6 <= hashes <= 8

    def test_lower_fp_needs_more_bits(self):
        loose, _ = optimal_parameters(1000, 0.05)
        tight, _ = optimal_parameters(1000, 0.001)
        assert tight > loose

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            optimal_parameters(0, 0.01)
        with pytest.raises(ValueError):
            optimal_parameters(100, 0.0)
        with pytest.raises(ValueError):
            optimal_parameters(100, 1.0)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter.with_capacity(500, 0.01)
        keys = list(range(0, 5000, 10))
        bloom.update(keys)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_near_target(self):
        bloom = BloomFilter.with_capacity(500, 0.01)
        bloom.update(range(500))
        # Probe keys that were never inserted.
        false_positives = sum(1 for key in range(100_000, 102_000) if key in bloom)
        assert false_positives / 2000 < 0.05

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter.with_capacity(100, 0.01)
        assert 42 not in bloom
        assert bloom.false_positive_rate() == 0.0

    def test_clear(self):
        bloom = BloomFilter.with_capacity(100, 0.01)
        bloom.add(7)
        bloom.clear()
        assert 7 not in bloom
        assert bloom.count == 0

    def test_size_bytes_matches_bits(self):
        bloom = BloomFilter(num_bits=800, num_hashes=4)
        assert bloom.size_bytes() == 100

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 3)
        with pytest.raises(ValueError):
            BloomFilter(100, 0)

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=300))
    def test_membership_property(self, keys):
        """Every inserted key is always reported present (no false negatives)."""
        bloom = BloomFilter.with_capacity(max(len(keys), 16), 0.01)
        bloom.update(keys)
        assert all(key in bloom for key in keys)


class TestFifoBloomFilter:
    def test_window_eviction_keeps_recent(self):
        bloom = FifoBloomFilter.with_capacity(100, 0.01, window=100)
        bloom.update(range(250))
        # The most recent 100 keys must still be present.
        assert all(key in bloom for key in range(150, 250))
        assert len(bloom) == 100

    def test_below_window_treated_as_held(self):
        bloom = FifoBloomFilter.with_capacity(50, 0.01, window=50)
        bloom.update(range(200))
        # Keys below the window floor are reported as present so senders do
        # not waste bandwidth on stale packets.
        assert 0 in bloom

    def test_advance_window_drops_old_keys(self):
        bloom = FifoBloomFilter.with_capacity(100, 0.01, window=100)
        bloom.update(range(50))
        bloom.advance_window(25)
        assert len(bloom) == 25
        assert bloom.low_sequence == 25

    def test_advance_window_backwards_is_noop(self):
        bloom = FifoBloomFilter.with_capacity(100, 0.01, window=100)
        bloom.update(range(10))
        bloom.advance_window(5)
        bloom.advance_window(2)
        assert bloom.low_sequence == 5

    def test_no_false_negatives_within_window(self):
        bloom = FifoBloomFilter.with_capacity(200, 0.01, window=200)
        keys = list(range(1000, 1200))
        bloom.update(keys)
        assert all(key in bloom for key in keys)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            FifoBloomFilter(100, 3, window=0)

    def test_size_bytes_positive(self):
        bloom = FifoBloomFilter.with_capacity(128, 0.01)
        assert bloom.size_bytes() > 0
