"""Property tests: the incremental FIFO Bloom filter vs from-scratch rebuilds.

The counting/heap implementation must be *observationally equivalent* to the
historical behaviour: rebuilding the bit array over the surviving window
keys after every mutation.  Hypothesis drives arbitrary interleavings of
inserts and window advances against a reference model.
"""

from hypothesis import given, settings, strategies as st

from repro.reconcile.bloom import BloomFilter, FifoBloomFilter

#: Filter geometry small enough for fast runs, big enough to be meaningful.
NUM_BITS = 512
NUM_HASHES = 4
WINDOW = 24

#: An operation is an insert (``("add", key)``) or a window advance.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(min_value=0, max_value=400)),
        st.tuples(st.just("advance"), st.integers(min_value=0, max_value=400)),
    ),
    min_size=1,
    max_size=120,
)


def _reference(ops):
    """The historical semantics: an explicit key list, rebuilt on change."""
    keys = []
    low = 0
    for kind, value in ops:
        if kind == "add":
            if value < low:
                continue
            keys.append(value)
            if len(keys) > WINDOW:
                keys.sort()
                keys = keys[-WINDOW:]
                low = keys[0] if keys else 0
        else:
            if value <= low:
                continue
            low = value
            keys = [key for key in keys if key >= low]
    rebuilt = BloomFilter(NUM_BITS, NUM_HASHES)
    rebuilt.update(keys)
    return keys, low, rebuilt


def _apply(ops):
    bloom = FifoBloomFilter(NUM_BITS, NUM_HASHES, window=WINDOW)
    for kind, value in ops:
        if kind == "add":
            bloom.add(value)
        else:
            bloom.advance_window(value)
    return bloom


class TestObservationEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(_ops)
    def test_membership_matches_rebuild(self, ops):
        bloom = _apply(ops)
        keys, low, rebuilt = _reference(ops)
        assert len(bloom) == len(keys)
        assert bloom.low_sequence == low
        for probe in range(0, 420, 3):
            expected = probe < low or probe in rebuilt
            assert (probe in bloom) == expected

    @settings(max_examples=60, deadline=None)
    @given(_ops)
    def test_snapshot_matches_rebuild_over_window(self, ops):
        """A snapshot equals a fresh filter built from the surviving keys."""
        bloom = _apply(ops)
        keys, low, rebuilt = _reference(ops)
        snapshot = bloom.snapshot()
        expected_low = min(keys) if keys else 0
        assert snapshot.low_sequence == expected_low
        assert snapshot.size_bytes() == bloom.size_bytes()
        for probe in range(0, 420, 3):
            expected = probe < expected_low or probe in rebuilt
            assert (probe in snapshot) == expected

    @settings(max_examples=60, deadline=None)
    @given(_ops, st.lists(st.integers(min_value=0, max_value=420), max_size=30))
    def test_missing_is_batch_negation_of_contains(self, ops, probes):
        bloom = _apply(ops)
        snapshot = bloom.snapshot()
        assert bloom.missing(probes) == [p for p in probes if p not in bloom]
        assert snapshot.missing(probes) == [p for p in probes if p not in snapshot]


class TestVersioning:
    def test_version_advances_on_observable_mutations(self):
        bloom = FifoBloomFilter(NUM_BITS, NUM_HASHES, window=8)
        v0 = bloom.version
        bloom.add(5)
        v1 = bloom.version
        assert v1 > v0
        bloom.advance_window(3)  # drops nothing, but moves the floor
        v2 = bloom.version
        assert v2 > v1
        bloom.advance_window(2)  # behind the floor: no observable change
        assert bloom.version == v2
        bloom.add(1)  # below the floor: ignored, no observable change
        assert bloom.version == v2

    def test_snapshot_is_frozen(self):
        bloom = FifoBloomFilter(NUM_BITS, NUM_HASHES, window=16)
        bloom.update(range(10))
        snapshot = bloom.snapshot()
        assert 11 not in snapshot
        bloom.add(11)
        assert 11 in bloom
        assert 11 not in snapshot  # the exported wire copy must not move
