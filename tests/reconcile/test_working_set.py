"""Tests for the per-node working set."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.reconcile.working_set import WorkingSet


class TestWorkingSet:
    def test_add_returns_usefulness(self):
        ws = WorkingSet()
        assert ws.add(5) is True
        assert ws.add(5) is False
        assert ws.total_received == 1
        assert ws.total_duplicates == 1

    def test_contains_and_len(self):
        ws = WorkingSet()
        ws.update([1, 2, 3])
        assert 2 in ws
        assert 9 not in ws
        assert len(ws) == 3

    def test_highest_sequence(self):
        ws = WorkingSet()
        assert ws.highest_sequence == -1
        ws.update([10, 3, 7])
        assert ws.highest_sequence == 10

    def test_negative_sequence_rejected(self):
        ws = WorkingSet()
        with pytest.raises(ValueError):
            ws.add(-1)

    def test_pruning_keeps_window(self):
        ws = WorkingSet(prune_window=100)
        ws.update(range(250))
        assert len(ws) <= 100
        assert ws.low_water >= 150
        # Pruned sequences are treated as held (no point recovering them).
        assert 0 in ws

    def test_prune_below_explicit(self):
        ws = WorkingSet()
        ws.update(range(50))
        ws.prune_below(30)
        assert len(ws) == 20
        assert 10 in ws  # below low water: considered held

    def test_missing_in_range(self):
        ws = WorkingSet()
        ws.update([0, 1, 2, 5, 7])
        assert ws.missing_in_range(0, 7) == [3, 4, 6]
        assert ws.missing_in_range(7, 0) == []

    def test_missing_in_range_respects_low_water(self):
        ws = WorkingSet(prune_window=10)
        ws.update(range(30))
        # Everything below low_water counts as held.
        assert ws.missing_in_range(0, ws.low_water - 1) == []

    def test_recovery_range_tracks_highest(self):
        ws = WorkingSet()
        ws.update(range(100, 200))
        low, high = ws.recovery_range(span=50)
        assert high == 199
        assert low == 150

    def test_recovery_range_empty_set(self):
        ws = WorkingSet()
        assert ws.recovery_range(span=100) == (0, 99)

    def test_recovery_range_rejects_bad_span(self):
        ws = WorkingSet()
        with pytest.raises(ValueError):
            ws.recovery_range(0)

    def test_sequences_sorted(self):
        ws = WorkingSet()
        ws.update([5, 1, 9, 3])
        assert ws.sequences() == [1, 3, 5, 9]

    def test_sequences_in_range(self):
        ws = WorkingSet()
        ws.update([1, 4, 6, 9, 15])
        assert ws.sequences_in_range(4, 9) == [4, 6, 9]
        assert ws.sequences_in_range(10, 5) == []

    def test_sequences_in_range_view_matches_list(self):
        ws = WorkingSet()
        ws.update([1, 4, 6, 9, 15])
        view = ws.sequences_in_range_view(4, 9)
        assert list(view) == [4, 6, 9]
        assert view == [4, 6, 9]
        assert len(view) == 3
        assert view[0] == 4 and view[-1] == 9
        assert view[1:] == [6, 9]
        # Negative-step slices must honour the window even at offset zero.
        assert view[::-1] == [9, 6, 4]
        full = ws.sequences_in_range_view(0, 100)
        assert full[::-1] == [15, 9, 6, 4, 1]
        assert full[::2] == [1, 6, 15]
        assert 6 in view
        assert len(ws.sequences_in_range_view(10, 5)) == 0

    def test_sequences_in_range_view_is_zero_copy_snapshot(self):
        ws = WorkingSet()
        ws.update([1, 4, 6, 9, 15])
        view = ws.sequences_in_range_view(1, 15)
        # No copy: the view windows the cached sorted list itself.
        assert view._data is ws._sorted()
        # Later mutations replace the cache wholesale; the view still sees
        # the content it was taken over (a stable snapshot).
        ws.add(7)
        assert list(view) == [1, 4, 6, 9, 15]
        assert ws.sequences_in_range(1, 15) == [1, 4, 6, 7, 9, 15]

    def test_view_is_read_only(self):
        ws = WorkingSet()
        ws.update([1, 2, 3])
        view = ws.sequences_in_range_view(1, 3)
        with pytest.raises((TypeError, AttributeError)):
            view.append(4)  # type: ignore[attr-defined]
        with pytest.raises(TypeError):
            view[0] = 9  # type: ignore[index]

    def test_duplicate_fraction(self):
        ws = WorkingSet()
        ws.add(1)
        ws.add(1)
        ws.add(2)
        assert ws.duplicate_fraction() == pytest.approx(1 / 3)

    def test_summary_ticket_window(self):
        ws = WorkingSet()
        ws.update(range(1000))
        full = ws.summary_ticket()
        windowed = ws.summary_ticket(window=100)
        # The windowed ticket reflects only recent data, so it should differ
        # from the full-set ticket.
        assert full.entries != windowed.entries

    def test_summary_ticket_stride_preserves_ranking(self):
        """Sub-sampled tickets still rank similar sets above divergent ones."""
        base = WorkingSet()
        base.update(range(500))
        similar = WorkingSet()
        similar.update(range(50, 550))
        divergent = WorkingSet()
        divergent.update(range(10_000, 10_500))
        base_ticket = base.summary_ticket(sample_stride=4)
        similar_ticket = similar.summary_ticket(sample_stride=4)
        divergent_ticket = divergent.summary_ticket(sample_stride=4)
        assert base_ticket.resemblance(similar_ticket) > base_ticket.resemblance(divergent_ticket)

    def test_summary_ticket_rejects_bad_args(self):
        ws = WorkingSet()
        with pytest.raises(ValueError):
            ws.summary_ticket(sample_stride=0)
        with pytest.raises(ValueError):
            ws.summary_ticket(window=0)

    def test_bloom_filter_covers_recent(self):
        ws = WorkingSet()
        ws.update(range(500))
        bloom = ws.bloom_filter(expected_items=200)
        assert all(seq in bloom for seq in range(300, 500))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=300))
    def test_useful_count_matches_distinct(self, sequences):
        ws = WorkingSet(prune_window=10_000)
        useful = ws.update(sequences)
        assert useful == len(set(sequences))
        assert ws.total_received == len(set(sequences))
        assert ws.total_duplicates == len(sequences) - len(set(sequences))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=100), st.integers(min_value=1, max_value=400))
    def test_prune_window_invariant(self, window, count):
        ws = WorkingSet(prune_window=window)
        ws.update(range(count))
        assert len(ws) <= window


class TestVersionedCaches:
    def test_version_bumps_on_mutation_only(self):
        ws = WorkingSet()
        v0 = ws.version
        ws.add(3)
        assert ws.version > v0
        v1 = ws.version
        ws.add(3)  # duplicate: no observable change
        assert ws.version == v1
        ws.prune_below(2)
        assert ws.version > v1

    def test_sorted_views_stay_correct_across_mutations(self):
        ws = WorkingSet()
        ws.update([9, 1, 5])
        assert ws.sequences() == [1, 5, 9]
        ws.add(3)
        assert ws.sequences() == [1, 3, 5, 9]
        assert ws.sequences_in_range(2, 6) == [3, 5]
        ws.prune_below(4)
        assert ws.sequences_in_range(0, 100) == [5, 9]

    def test_bloom_snapshot_cached_until_content_changes(self):
        ws = WorkingSet()
        ws.update(range(20))
        first = ws.bloom_snapshot(expected_items=64)
        assert ws.bloom_snapshot(expected_items=64) is first
        ws.add(99)
        assert ws.bloom_snapshot(expected_items=64) is not first


class TestBloomSnapshotEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=300), min_size=1, max_size=120),
        st.integers(min_value=0, max_value=250),
    )
    def test_snapshot_matches_from_scratch_build(self, sequences, prune_at):
        """The maintained filter's snapshot == the historical rebuild."""
        incremental = WorkingSet(prune_window=64)
        incremental.bloom_snapshot(expected_items=48)  # arm the live filter
        reference = WorkingSet(prune_window=64)
        for sequence in sequences:
            incremental.add(sequence)
            reference.add(sequence)
        incremental.prune_below(prune_at)
        reference.prune_below(prune_at)
        snapshot = incremental.bloom_snapshot(expected_items=48)
        rebuilt = reference.bloom_filter(expected_items=48)
        assert snapshot.size_bytes() == rebuilt.size_bytes()
        assert snapshot.low_sequence == rebuilt.low_sequence
        for probe in range(0, 310, 2):
            assert (probe in snapshot) == (probe in rebuilt)


class TestIncrementalTicketEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=500), min_size=0, max_size=60),
            min_size=1,
            max_size=6,
        )
    )
    def test_incremental_ticket_equals_rebuild_each_round(self, rounds):
        """Diffed min-wise sketches match full rebuilds after every round."""
        ws = WorkingSet(prune_window=96)
        for batch in rounds:
            ws.update(batch)
            fast = ws.summary_ticket(window=48, sample_stride=2, incremental=True)
            slow = ws.summary_ticket(window=48, sample_stride=2)
            assert fast.entries == slow.entries

    def test_incremental_ticket_survives_pruning(self):
        ws = WorkingSet(prune_window=64)
        ws.update(range(100))
        ws.summary_ticket(window=32, sample_stride=2, incremental=True)
        ws.prune_below(80)
        ws.update(range(100, 140))
        fast = ws.summary_ticket(window=32, sample_stride=2, incremental=True)
        slow = ws.summary_ticket(window=32, sample_stride=2)
        assert fast.entries == slow.entries
