"""Tests for the per-node working set."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.reconcile.working_set import WorkingSet


class TestWorkingSet:
    def test_add_returns_usefulness(self):
        ws = WorkingSet()
        assert ws.add(5) is True
        assert ws.add(5) is False
        assert ws.total_received == 1
        assert ws.total_duplicates == 1

    def test_contains_and_len(self):
        ws = WorkingSet()
        ws.update([1, 2, 3])
        assert 2 in ws
        assert 9 not in ws
        assert len(ws) == 3

    def test_highest_sequence(self):
        ws = WorkingSet()
        assert ws.highest_sequence == -1
        ws.update([10, 3, 7])
        assert ws.highest_sequence == 10

    def test_negative_sequence_rejected(self):
        ws = WorkingSet()
        with pytest.raises(ValueError):
            ws.add(-1)

    def test_pruning_keeps_window(self):
        ws = WorkingSet(prune_window=100)
        ws.update(range(250))
        assert len(ws) <= 100
        assert ws.low_water >= 150
        # Pruned sequences are treated as held (no point recovering them).
        assert 0 in ws

    def test_prune_below_explicit(self):
        ws = WorkingSet()
        ws.update(range(50))
        ws.prune_below(30)
        assert len(ws) == 20
        assert 10 in ws  # below low water: considered held

    def test_missing_in_range(self):
        ws = WorkingSet()
        ws.update([0, 1, 2, 5, 7])
        assert ws.missing_in_range(0, 7) == [3, 4, 6]
        assert ws.missing_in_range(7, 0) == []

    def test_missing_in_range_respects_low_water(self):
        ws = WorkingSet(prune_window=10)
        ws.update(range(30))
        # Everything below low_water counts as held.
        assert ws.missing_in_range(0, ws.low_water - 1) == []

    def test_recovery_range_tracks_highest(self):
        ws = WorkingSet()
        ws.update(range(100, 200))
        low, high = ws.recovery_range(span=50)
        assert high == 199
        assert low == 150

    def test_recovery_range_empty_set(self):
        ws = WorkingSet()
        assert ws.recovery_range(span=100) == (0, 99)

    def test_recovery_range_rejects_bad_span(self):
        ws = WorkingSet()
        with pytest.raises(ValueError):
            ws.recovery_range(0)

    def test_sequences_sorted(self):
        ws = WorkingSet()
        ws.update([5, 1, 9, 3])
        assert ws.sequences() == [1, 3, 5, 9]

    def test_sequences_in_range(self):
        ws = WorkingSet()
        ws.update([1, 4, 6, 9, 15])
        assert ws.sequences_in_range(4, 9) == [4, 6, 9]
        assert ws.sequences_in_range(10, 5) == []

    def test_duplicate_fraction(self):
        ws = WorkingSet()
        ws.add(1)
        ws.add(1)
        ws.add(2)
        assert ws.duplicate_fraction() == pytest.approx(1 / 3)

    def test_summary_ticket_window(self):
        ws = WorkingSet()
        ws.update(range(1000))
        full = ws.summary_ticket()
        windowed = ws.summary_ticket(window=100)
        # The windowed ticket reflects only recent data, so it should differ
        # from the full-set ticket.
        assert full.entries != windowed.entries

    def test_summary_ticket_stride_preserves_ranking(self):
        """Sub-sampled tickets still rank similar sets above divergent ones."""
        base = WorkingSet()
        base.update(range(500))
        similar = WorkingSet()
        similar.update(range(50, 550))
        divergent = WorkingSet()
        divergent.update(range(10_000, 10_500))
        base_ticket = base.summary_ticket(sample_stride=4)
        similar_ticket = similar.summary_ticket(sample_stride=4)
        divergent_ticket = divergent.summary_ticket(sample_stride=4)
        assert base_ticket.resemblance(similar_ticket) > base_ticket.resemblance(divergent_ticket)

    def test_summary_ticket_rejects_bad_args(self):
        ws = WorkingSet()
        with pytest.raises(ValueError):
            ws.summary_ticket(sample_stride=0)
        with pytest.raises(ValueError):
            ws.summary_ticket(window=0)

    def test_bloom_filter_covers_recent(self):
        ws = WorkingSet()
        ws.update(range(500))
        bloom = ws.bloom_filter(expected_items=200)
        assert all(seq in bloom for seq in range(300, 500))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=300))
    def test_useful_count_matches_distinct(self, sequences):
        ws = WorkingSet(prune_window=10_000)
        useful = ws.update(sequences)
        assert useful == len(set(sequences))
        assert ws.total_received == len(set(sequences))
        assert ws.total_duplicates == len(sequences) - len(set(sequences))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=100), st.integers(min_value=1, max_value=400))
    def test_prune_window_invariant(self, window, count):
        ws = WorkingSet(prune_window=window)
        ws.update(range(count))
        assert len(ws) <= window
