"""Tests for min-wise summary tickets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.reconcile.summary_ticket import DEFAULT_TICKET_ENTRIES, SummaryTicket


class TestSummaryTicket:
    def test_default_size_matches_paper(self):
        # The paper describes 120-byte tickets; 30 entries x 4 bytes.
        ticket = SummaryTicket()
        assert ticket.num_entries == DEFAULT_TICKET_ENTRIES
        assert ticket.size_bytes() == 120

    def test_identical_sets_have_resemblance_one(self):
        a = SummaryTicket.from_working_set(range(100), seed=1)
        b = SummaryTicket.from_working_set(range(100), seed=1)
        assert a.resemblance(b) == pytest.approx(1.0)

    def test_disjoint_sets_have_low_resemblance(self):
        a = SummaryTicket.from_working_set(range(0, 200), seed=1)
        b = SummaryTicket.from_working_set(range(10_000, 10_200), seed=1)
        assert a.resemblance(b) < 0.2

    def test_resemblance_tracks_overlap(self):
        base = list(range(400))
        a = SummaryTicket.from_working_set(base, seed=1)
        mostly_same = SummaryTicket.from_working_set(base[:350] + list(range(1000, 1050)), seed=1)
        half_same = SummaryTicket.from_working_set(base[:200] + list(range(1000, 1200)), seed=1)
        assert a.resemblance(mostly_same) > a.resemblance(half_same)

    def test_resemblance_symmetric(self):
        a = SummaryTicket.from_working_set(range(0, 150), seed=2)
        b = SummaryTicket.from_working_set(range(75, 225), seed=2)
        assert a.resemblance(b) == pytest.approx(b.resemblance(a))

    def test_empty_tickets_resemble_each_other(self):
        a, b = SummaryTicket(seed=1), SummaryTicket(seed=1)
        assert a.resemblance(b) == 1.0
        assert a.is_empty()

    def test_mismatched_sizes_rejected(self):
        a = SummaryTicket(num_entries=10)
        b = SummaryTicket(num_entries=20)
        with pytest.raises(ValueError):
            a.resemblance(b)

    def test_copy_is_independent(self):
        a = SummaryTicket.from_working_set(range(50), seed=3)
        clone = a.copy()
        clone.insert(10_000)
        assert a.entries != clone.entries or a.resemblance(clone) == 1.0

    def test_insert_only_lowers_entries(self):
        ticket = SummaryTicket.from_working_set(range(100), seed=4)
        before = [entry for entry in ticket.entries]
        ticket.insert(123_456)
        after = ticket.entries
        assert all(b is None or a <= b for a, b in zip(after, before))

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            SummaryTicket(num_entries=0)

    @settings(max_examples=25, deadline=None)
    @given(
        st.sets(st.integers(min_value=0, max_value=10**6), min_size=30, max_size=150),
        st.sets(st.integers(min_value=0, max_value=10**6), min_size=30, max_size=150),
    )
    def test_estimate_close_to_true_jaccard(self, set_a, set_b):
        """Min-wise estimate approximates the true Jaccard similarity."""
        true = len(set_a & set_b) / len(set_a | set_b)
        a = SummaryTicket.from_working_set(set_a, num_entries=60, seed=7)
        b = SummaryTicket.from_working_set(set_b, num_entries=60, seed=7)
        estimate = a.resemblance(b)
        assert abs(estimate - true) < 0.35

    def test_insertion_order_invariance(self):
        keys = list(range(0, 500, 3))
        forward = SummaryTicket.from_working_set(keys, seed=5)
        backward = SummaryTicket.from_working_set(reversed(keys), seed=5)
        assert forward.entries == backward.entries
