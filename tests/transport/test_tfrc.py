"""Tests for the TFRC rate-control model."""

import pytest

from repro.transport.tfrc import LossHistory, MIN_RATE_KBPS, TfrcFlowState


class TestLossHistory:
    def test_no_loss_reports_zero(self):
        history = LossHistory()
        history.record_packets(received=100, lost=0)
        assert history.loss_event_rate() == 0.0

    def test_single_loss_event(self):
        history = LossHistory()
        history.record_packets(received=99, lost=1)
        assert history.loss_event_rate() > 0.0

    def test_loss_rate_roughly_inverse_of_interval(self):
        history = LossHistory()
        for _ in range(8):
            history.record_packets(received=100, lost=1)
        # Loss events every ~100 packets -> p around 1/100.
        assert 0.005 <= history.loss_event_rate() <= 0.02

    def test_more_frequent_losses_give_higher_rate(self):
        sparse, dense = LossHistory(), LossHistory()
        for _ in range(8):
            sparse.record_packets(received=200, lost=1)
            dense.record_packets(received=20, lost=1)
        assert dense.loss_event_rate() > sparse.loss_event_rate()

    def test_history_bounded_to_eight_intervals(self):
        history = LossHistory()
        for _ in range(30):
            history.record_packets(received=10, lost=1)
        assert len(history.intervals) == 8

    def test_long_quiet_period_discounts_history(self):
        history = LossHistory()
        for _ in range(8):
            history.record_packets(received=10, lost=1)
        rate_during_losses = history.loss_event_rate()
        history.record_packets(received=10_000, lost=0)
        assert history.loss_event_rate() < rate_during_losses

    def test_rejects_negative_counts(self):
        history = LossHistory()
        with pytest.raises(ValueError):
            history.record_packets(received=-1, lost=0)


class TestTfrcFlowState:
    def test_slow_start_doubles_until_loss(self):
        flow = TfrcFlowState(rtt_s=0.05)
        first = flow.allowed_rate_kbps
        flow.on_feedback(received_packets=10, lost_packets=0)
        second = flow.allowed_rate_kbps
        assert second == pytest.approx(first * 2)
        assert flow.in_slow_start

    def test_loss_exits_slow_start(self):
        flow = TfrcFlowState(rtt_s=0.05)
        for _ in range(5):
            flow.on_feedback(received_packets=50, lost_packets=0)
        flow.on_feedback(received_packets=50, lost_packets=2)
        assert not flow.in_slow_start

    def test_rate_capped_by_equation_after_loss(self):
        flow = TfrcFlowState(rtt_s=0.05)
        for _ in range(10):
            flow.on_feedback(received_packets=50, lost_packets=0)
        ramped = flow.allowed_rate_kbps
        flow.on_feedback(received_packets=20, lost_packets=5)
        assert flow.allowed_rate_kbps <= ramped
        assert flow.allowed_rate_kbps <= flow.equation_rate_kbps() + 1e-6

    def test_rate_never_below_floor(self):
        flow = TfrcFlowState(rtt_s=0.2)
        for _ in range(20):
            flow.on_feedback(received_packets=2, lost_packets=2)
        assert flow.allowed_rate_kbps >= MIN_RATE_KBPS

    def test_recovers_after_losses_stop(self):
        flow = TfrcFlowState(rtt_s=0.05)
        for _ in range(5):
            flow.on_feedback(received_packets=20, lost_packets=2)
        depressed = flow.allowed_rate_kbps
        for _ in range(30):
            flow.on_feedback(received_packets=100, lost_packets=0)
        assert flow.allowed_rate_kbps > depressed

    def test_smooth_increase_in_congestion_avoidance(self):
        flow = TfrcFlowState(rtt_s=0.05)
        flow.on_feedback(received_packets=50, lost_packets=1)
        before = flow.allowed_rate_kbps
        flow.on_feedback(received_packets=100, lost_packets=0)
        after = flow.allowed_rate_kbps
        # Growth is bounded (no slow-start doubling after the first loss).
        assert after <= before * 2

    def test_rejects_bad_rtt(self):
        with pytest.raises(ValueError):
            TfrcFlowState(rtt_s=0.0)

    def test_rate_cap_matches_allowed_rate(self):
        flow = TfrcFlowState(rtt_s=0.05)
        flow.on_feedback(received_packets=10, lost_packets=0)
        assert flow.rate_cap_kbps() == flow.allowed_rate_kbps
