"""Tests for the steady-state TCP throughput formula."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.transport.tcp_model import tcp_throughput_bytes_per_second, tcp_throughput_kbps


class TestTcpThroughput:
    def test_zero_loss_is_unconstrained(self):
        assert math.isinf(tcp_throughput_kbps(0.1, 0.0))

    def test_known_value_reasonable(self):
        # 100 ms RTT, 1% loss, 1500-byte packets: classic ballpark ~1.2 Mbps
        # for the simplified sqrt model; the full PFTK formula is lower but
        # must stay within the same order of magnitude.
        rate = tcp_throughput_kbps(0.1, 0.01)
        assert 300.0 < rate < 2000.0

    def test_more_loss_means_less_throughput(self):
        low_loss = tcp_throughput_kbps(0.1, 0.001)
        high_loss = tcp_throughput_kbps(0.1, 0.05)
        assert high_loss < low_loss

    def test_longer_rtt_means_less_throughput(self):
        short = tcp_throughput_kbps(0.02, 0.01)
        long = tcp_throughput_kbps(0.2, 0.01)
        assert long < short

    def test_larger_packets_mean_more_throughput(self):
        small = tcp_throughput_bytes_per_second(0.1, 0.01, packet_size_bytes=500)
        large = tcp_throughput_bytes_per_second(0.1, 0.01, packet_size_bytes=1500)
        assert large > small

    def test_rejects_bad_rtt(self):
        with pytest.raises(ValueError):
            tcp_throughput_kbps(0.0, 0.01)

    def test_rejects_bad_loss(self):
        with pytest.raises(ValueError):
            tcp_throughput_kbps(0.1, 1.0)
        with pytest.raises(ValueError):
            tcp_throughput_kbps(0.1, -0.1)

    @given(
        st.floats(min_value=0.005, max_value=1.0),
        st.floats(min_value=1e-4, max_value=0.5),
    )
    def test_always_positive_and_finite(self, rtt, loss):
        rate = tcp_throughput_kbps(rtt, loss)
        assert rate > 0
        assert math.isfinite(rate)

    @given(st.floats(min_value=0.005, max_value=1.0))
    def test_monotone_in_loss(self, rtt):
        rates = [tcp_throughput_kbps(rtt, p) for p in (0.001, 0.01, 0.05, 0.2)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))
