"""Tests for the non-blocking sender and the reliable queue."""

import pytest
from hypothesis import given, strategies as st

from repro.transport.socket import NonBlockingSender, ReliableQueue


class TestNonBlockingSender:
    def test_budget_limits_sends(self):
        sender = NonBlockingSender()
        sender.refresh(3.0)
        results = [sender.try_send(i) for i in range(5)]
        assert results == [True, True, True, False, False]

    def test_would_block(self):
        sender = NonBlockingSender()
        sender.refresh(1.0)
        assert not sender.would_block()
        sender.try_send(0)
        assert sender.would_block()

    def test_fractional_budget_carries_over(self):
        sender = NonBlockingSender()
        accepted = 0
        for _ in range(10):
            sender.refresh(0.5)
            if sender.try_send(accepted):
                accepted += 1
        assert accepted == 5

    def test_drain_returns_and_clears(self):
        sender = NonBlockingSender()
        sender.refresh(2.0)
        sender.try_send(7)
        sender.try_send(8)
        assert sender.drain() == [7, 8]
        assert sender.drain() == []

    def test_counters(self):
        sender = NonBlockingSender()
        sender.refresh(1.0)
        sender.try_send(1)
        sender.try_send(2)
        assert sender.total_accepted == 1
        assert sender.total_rejected == 1

    def test_negative_rate_rejected(self):
        sender = NonBlockingSender()
        with pytest.raises(ValueError):
            sender.refresh(-1.0)

    @given(st.floats(min_value=0, max_value=50), st.integers(min_value=1, max_value=200))
    def test_long_run_rate_matches_budget(self, rate, steps):
        sender = NonBlockingSender()
        accepted = 0
        for step in range(steps):
            sender.refresh(rate)
            while sender.try_send(accepted):
                accepted += 1
        assert accepted == int(rate * steps) or abs(accepted - rate * steps) < 1.0


class TestReliableQueue:
    def test_fifo_order(self):
        queue = ReliableQueue()
        for i in range(5):
            queue.offer(i)
        assert queue.take(3) == [0, 1, 2]
        assert queue.take(3) == [3, 4]

    def test_take_zero_or_negative(self):
        queue = ReliableQueue()
        queue.offer(1)
        assert queue.take(0) == []
        assert queue.take(-1) == []
        assert len(queue) == 1

    def test_bounded_queue_drops_oldest(self):
        queue = ReliableQueue(max_queue=3)
        for i in range(5):
            queue.offer(i)
        assert len(queue) == 3
        assert queue.dropped_overflow == 2
        assert queue.take(3) == [2, 3, 4]
