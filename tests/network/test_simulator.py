"""Tests for the time-stepped fluid network simulator."""

import pytest

from repro.network.simulator import NetworkSimulator
from repro.topology.graph import Topology
from repro.topology.links import LinkType


def star_topology(capacity=1000.0, loss=0.0):
    """Three clients hanging off one stub router."""
    topo = Topology()
    topo.add_node(0, "stub")
    for client in (1, 2, 3):
        topo.add_node(client, "client")
        topo.add_duplex_link(client, 0, LinkType.CLIENT_STUB, capacity, 0.005, loss_rate=loss)
    return topo


class TestNetworkSimulator:
    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            NetworkSimulator(star_topology(), dt=0.0)

    def test_clock_advances(self):
        sim = NetworkSimulator(star_topology(), dt=0.5)
        sim.run_steps(4)
        assert sim.time == pytest.approx(2.0)

    def test_single_flow_achieves_bottleneck(self):
        sim = NetworkSimulator(star_topology(capacity=600.0), dt=1.0, congestion_loss_rate=0.0)
        flow = sim.create_flow(1, 2, demand_kbps=10_000.0, use_tfrc=False)
        delivered = []

        def phase(now):
            for seq in range(200):
                if not flow.try_send(len(delivered) * 200 + seq):
                    break

        for _ in range(10):
            sim.begin_step()
            phase(sim.time)
            sim.end_step()
            delivered.extend(flow.take_delivered())
        # 600 Kbps for 10 s at 12 Kbit per packet = 500 packets.
        assert 480 <= len(delivered) <= 500

    def test_two_flows_share_link_fairly(self):
        sim = NetworkSimulator(star_topology(capacity=1200.0), dt=1.0)
        flow_a = sim.create_flow(1, 3, demand_kbps=10_000.0, use_tfrc=False)
        flow_b = sim.create_flow(2, 3, demand_kbps=10_000.0, use_tfrc=False)
        sim.begin_step()
        # The shared link is 3's downlink (1200 Kbps): each flow gets ~600.
        assert flow_a.allocated_kbps == pytest.approx(600.0, rel=0.01)
        assert flow_b.allocated_kbps == pytest.approx(600.0, rel=0.01)

    def test_lossy_path_drops_packets(self):
        sim = NetworkSimulator(star_topology(loss=0.3), dt=1.0, seed=7)
        flow = sim.create_flow(1, 2, demand_kbps=600.0, use_tfrc=False)
        total_sent, total_delivered = 0, 0
        for step in range(30):
            sim.begin_step()
            budget = flow.send_budget()
            for i in range(budget):
                flow.try_send(step * 1000 + i)
            total_sent += budget
            sim.end_step()
            total_delivered += len(flow.take_delivered())
        assert total_delivered < total_sent
        loss_observed = 1 - total_delivered / total_sent
        # Path loss is 1 - 0.7^2 = 0.51; allow generous sampling slack.
        assert 0.3 < loss_observed < 0.7

    def test_tfrc_flow_backs_off_under_loss(self):
        sim = NetworkSimulator(star_topology(capacity=5000.0, loss=0.05), dt=1.0, seed=3)
        flow = sim.create_flow(1, 2, demand_kbps=5000.0, use_tfrc=True)
        rates = []
        for step in range(40):
            sim.begin_step()
            for i in range(flow.send_budget()):
                flow.try_send(step * 1000 + i)
            sim.end_step()
            flow.take_delivered()
            rates.append(flow.allocated_kbps)
        # With ~10% round-trip loss TFRC must stay well below the raw capacity.
        assert max(rates[20:]) < 4000.0

    def test_congestion_loss_on_saturated_link(self):
        """A saturated link drops a few percent of crossing packets (drop-tail model)."""
        sim = NetworkSimulator(
            star_topology(capacity=600.0), dt=1.0, seed=5,
            congestion_loss_rate=0.05, congestion_threshold=0.9,
        )
        flow = sim.create_flow(1, 2, demand_kbps=10_000.0, use_tfrc=False)
        sent = delivered = 0
        for step in range(30):
            sim.begin_step()
            budget = flow.send_budget()
            for i in range(budget):
                flow.try_send(step * 1000 + i)
            sent += budget
            sim.end_step()
            delivered += len(flow.take_delivered())
        assert delivered < sent
        assert flow.packets_lost > 0

    def test_congestion_loss_can_be_disabled(self):
        sim = NetworkSimulator(star_topology(capacity=600.0), dt=1.0, congestion_loss_rate=0.0)
        flow = sim.create_flow(1, 2, demand_kbps=10_000.0, use_tfrc=False)
        for step in range(10):
            sim.begin_step()
            for i in range(flow.send_budget()):
                flow.try_send(step * 1000 + i)
            sim.end_step()
        assert flow.packets_lost == 0

    def test_rejects_bad_congestion_parameters(self):
        with pytest.raises(ValueError):
            NetworkSimulator(star_topology(), congestion_loss_rate=1.0)
        with pytest.raises(ValueError):
            NetworkSimulator(star_topology(), congestion_threshold=0.0)

    def test_remove_flow(self):
        sim = NetworkSimulator(star_topology(), dt=1.0)
        flow = sim.create_flow(1, 2)
        assert len(sim.flows) == 1
        sim.remove_flow(flow)
        assert len(sim.flows) == 0
        sim.run_steps(2)  # must not raise

    def test_describe(self):
        sim = NetworkSimulator(star_topology(), dt=1.0)
        sim.create_flow(1, 2, demand_kbps=100.0)
        summary = sim.describe()
        assert summary["flows"] == 1.0

    def test_deterministic_given_seed(self):
        def run(seed):
            sim = NetworkSimulator(star_topology(loss=0.2), dt=1.0, seed=seed)
            flow = sim.create_flow(1, 2, demand_kbps=600.0, use_tfrc=False)
            delivered = 0
            for step in range(20):
                sim.begin_step()
                for i in range(flow.send_budget()):
                    flow.try_send(step * 100 + i)
                sim.end_step()
                delivered += len(flow.take_delivered())
            return delivered

        assert run(11) == run(11)
        assert run(11) != run(12) or run(13) != run(11)


class TestIncrementalAllocation:
    """The simulator's wiring of the incremental allocation engine."""

    def test_static_cbr_flows_hit_the_fast_path(self):
        sim = NetworkSimulator(star_topology(), dt=1.0, congestion_loss_rate=0.0)
        sim.create_flow(1, 2, demand_kbps=400.0, use_tfrc=False)
        sim.create_flow(2, 3, demand_kbps=400.0, use_tfrc=False)
        sim.run_steps(10)
        stats = sim.allocation_stats
        assert stats.solves == 1  # only the first step solved
        assert stats.clean_steps == 9

    def test_demand_change_triggers_resolve(self):
        sim = NetworkSimulator(star_topology(), dt=1.0, congestion_loss_rate=0.0)
        flow = sim.create_flow(1, 2, demand_kbps=400.0, use_tfrc=False)
        sim.run_steps(3)
        solves_before = sim.allocation_stats.solves
        flow.set_demand(200.0)
        sim.begin_step()
        sim.end_step()
        assert sim.allocation_stats.solves == solves_before + 1
        assert flow.allocated_kbps == pytest.approx(200.0)

    def test_tfrc_flows_recap_every_step(self):
        sim = NetworkSimulator(star_topology(), dt=1.0)
        sim.create_flow(1, 2, demand_kbps=800.0, use_tfrc=True)
        sim.run_steps(5)
        # TFRC feedback dirties the cap each step until demand binds.
        assert sim.allocation_stats.solves >= 2

    def test_remove_flow_redistributes_share(self):
        sim = NetworkSimulator(star_topology(capacity=1200.0), dt=1.0)
        flow_a = sim.create_flow(1, 3, demand_kbps=10_000.0, use_tfrc=False)
        flow_b = sim.create_flow(2, 3, demand_kbps=10_000.0, use_tfrc=False)
        sim.begin_step()
        sim.end_step()
        assert flow_a.allocated_kbps == pytest.approx(600.0, rel=0.01)
        sim.remove_flow(flow_b)
        sim.begin_step()
        sim.end_step()
        assert flow_a.allocated_kbps == pytest.approx(1200.0, rel=0.01)

    def test_single_pass_solver_selectable(self):
        sim = NetworkSimulator(
            star_topology(capacity=900.0), dt=1.0, solver="single_pass",
            congestion_loss_rate=0.0,
        )
        flow_a = sim.create_flow(1, 3, demand_kbps=10_000.0, use_tfrc=False)
        flow_b = sim.create_flow(2, 3, demand_kbps=100.0, use_tfrc=False)
        sim.begin_step()
        # single_pass gives c/n = 450 even though flow_b only wants 100.
        assert flow_a.allocated_kbps == pytest.approx(450.0)
        assert flow_b.allocated_kbps == pytest.approx(100.0)

    def test_capacity_change_is_picked_up(self):
        topo = star_topology(capacity=1000.0)
        sim = NetworkSimulator(topo, dt=1.0, congestion_loss_rate=0.0)
        flow = sim.create_flow(1, 2, demand_kbps=10_000.0, use_tfrc=False)
        sim.begin_step()
        sim.end_step()
        assert flow.allocated_kbps == pytest.approx(1000.0)
        for link in flow.link_indices:
            topo.set_link_capacity(link, 300.0)
        sim.begin_step()
        sim.end_step()
        assert flow.allocated_kbps == pytest.approx(300.0)

    def test_describe_reports_engine_counters(self):
        sim = NetworkSimulator(star_topology(), dt=1.0)
        sim.create_flow(1, 2, demand_kbps=100.0, use_tfrc=False)
        sim.run_steps(4)
        summary = sim.describe()
        assert summary["alloc_steps"] == 4.0
        assert "alloc_clean_fraction" in summary
