"""Tests for periodic timers and the one-shot event scheduler."""

import pytest

from repro.network.events import EventScheduler, PeriodicTimer


class TestPeriodicTimer:
    def test_does_not_fire_before_first_period(self):
        timer = PeriodicTimer(5.0)
        assert not timer.fire(0.0)
        assert not timer.fire(4.0)

    def test_fires_once_per_period(self):
        timer = PeriodicTimer(5.0)
        timer.fire(0.0)
        fires = [t for t in range(1, 21) if timer.fire(float(t))]
        assert fires == [5, 10, 15, 20]

    def test_start_at_override(self):
        timer = PeriodicTimer(10.0, start_at=2.0)
        assert not timer.fire(1.0)
        assert timer.fire(2.0)
        assert not timer.fire(5.0)
        assert timer.fire(12.0)

    def test_no_drift_with_large_steps(self):
        timer = PeriodicTimer(3.0)
        timer.fire(0.0)
        # A huge step should fire once, then re-arm relative to schedule.
        assert timer.fire(10.0)
        assert not timer.fire(11.0)
        assert timer.fire(12.0)

    def test_reset(self):
        timer = PeriodicTimer(5.0)
        timer.fire(0.0)
        timer.reset(7.0)
        assert not timer.fire(10.0)
        assert timer.fire(12.0)

    def test_time_to_next(self):
        timer = PeriodicTimer(5.0)
        timer.fire(0.0)
        assert timer.time_to_next(1.0) == pytest.approx(4.0)

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            PeriodicTimer(0.0)

    def test_time_to_next_unarmed_without_start_at(self):
        # An unarmed default timer would lazy-arm at now + period on its
        # first fire() — time_to_next must predict that, not crash.
        timer = PeriodicTimer(5.0)
        assert timer.time_to_next(3.0) == pytest.approx(5.0)

    def test_time_to_next_unarmed_with_start_at(self):
        timer = PeriodicTimer(10.0, start_at=7.0)
        assert timer.time_to_next(3.0) == pytest.approx(4.0)
        # A start_at already in the past is due immediately, not negative.
        assert timer.time_to_next(9.0) == 0.0

    def test_time_to_next_after_drift_rearm(self):
        # A catch-up fire after a large step re-arms relative to schedule
        # (12.0), not relative to the late observation time (10.0 + 3.0).
        timer = PeriodicTimer(3.0)
        timer.fire(0.0)
        assert timer.fire(10.0)
        assert timer.time_to_next(10.0) == pytest.approx(2.0)

    def test_prime_arms_without_firing(self):
        timer = PeriodicTimer(5.0)
        assert timer.prime(2.0) == 7.0
        # Priming must not have consumed a firing: the timer still fires
        # exactly at the primed deadline and not before.
        assert not timer.fire(6.0)
        assert timer.fire(7.0)

    def test_prime_respects_start_at(self):
        timer = PeriodicTimer(10.0, start_at=2.0)
        assert timer.prime(6.0) == 2.0  # past start_at: already due
        assert timer.fire(6.0)

    def test_prime_of_armed_timer_is_readonly(self):
        timer = PeriodicTimer(5.0)
        timer.fire(0.0)
        assert timer.prime(4.0) == 5.0
        assert timer.prime(4.5) == 5.0


class TestEventScheduler:
    def test_runs_due_events_in_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(5.0, lambda: order.append("b"))
        scheduler.schedule(1.0, lambda: order.append("a"))
        scheduler.schedule(10.0, lambda: order.append("c"))
        assert scheduler.run_due(6.0) == 2
        assert order == ["a", "b"]
        assert scheduler.pending() == 1

    def test_event_runs_only_once(self):
        scheduler = EventScheduler()
        count = []
        scheduler.schedule(1.0, lambda: count.append(1))
        scheduler.run_due(2.0)
        scheduler.run_due(3.0)
        assert len(count) == 1

    def test_rejects_negative_time(self):
        scheduler = EventScheduler()
        with pytest.raises(ValueError):
            scheduler.schedule(-1.0, lambda: None)

    def test_same_time_events_all_run(self):
        scheduler = EventScheduler()
        hits = []
        for i in range(3):
            scheduler.schedule(2.0, lambda i=i: hits.append(i))
        assert scheduler.run_due(2.0) == 3
        assert sorted(hits) == [0, 1, 2]

    def test_ties_run_in_insertion_order(self):
        # The heap entries carry an insertion counter precisely so that
        # same-time events are deterministic: FIFO, never comparison of the
        # (uncomparable) callbacks and never arbitrary heap order.
        scheduler = EventScheduler()
        order = []
        for i in range(8):
            scheduler.schedule(4.0, lambda i=i: order.append(i))
        scheduler.run_due(4.0)
        assert order == list(range(8))

    def test_ties_interleaved_with_earlier_events(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(4.0, lambda: order.append("tie-first"))
        scheduler.schedule(1.0, lambda: order.append("early"))
        scheduler.schedule(4.0, lambda: order.append("tie-second"))
        scheduler.run_due(4.0)
        assert order == ["early", "tie-first", "tie-second"]

    def test_next_time_reports_earliest_pending(self):
        scheduler = EventScheduler()
        assert scheduler.next_time() is None
        scheduler.schedule(9.0, lambda: None)
        scheduler.schedule(3.0, lambda: None)
        assert scheduler.next_time() == 3.0
        scheduler.run_due(3.0)
        assert scheduler.next_time() == 9.0
