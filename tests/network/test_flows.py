"""Tests for overlay flows."""

import pytest

from repro.network.flows import Flow
from repro.topology.graph import Topology
from repro.topology.links import LinkType


def two_host_topology(loss=0.0):
    topo = Topology()
    topo.add_node(0, "client")
    topo.add_node(1, "stub")
    topo.add_node(2, "client")
    topo.add_duplex_link(0, 1, LinkType.CLIENT_STUB, 1000.0, 0.01, loss_rate=loss)
    topo.add_duplex_link(1, 2, LinkType.CLIENT_STUB, 1000.0, 0.01, loss_rate=loss)
    return topo


class TestFlow:
    def test_rejects_self_flow(self):
        topo = two_host_topology()
        with pytest.raises(ValueError):
            Flow(topo, 0, 0)

    def test_path_and_rtt(self):
        topo = two_host_topology()
        flow = Flow(topo, 0, 2)
        assert len(flow.link_indices) == 2
        assert flow.rtt_s == pytest.approx(0.04)

    def test_budget_from_allocation(self):
        topo = two_host_topology()
        flow = Flow(topo, 0, 2)
        # 120 Kbps for 1 second with 12-Kbit packets = 10 packets.
        flow.begin_step(allocated_kbps=120.0, dt=1.0)
        assert flow.send_budget() == 10

    def test_try_send_respects_budget(self):
        topo = two_host_topology()
        flow = Flow(topo, 0, 2)
        flow.begin_step(allocated_kbps=24.0, dt=1.0)
        assert flow.try_send(0)
        assert flow.try_send(1)
        assert not flow.try_send(2)

    def test_delivery_round_trip(self):
        topo = two_host_topology()
        flow = Flow(topo, 0, 2)
        flow.begin_step(allocated_kbps=120.0, dt=1.0)
        for seq in range(5):
            flow.try_send(seq)
        sent = flow.collect_sent()
        flow.deliver(sent, lost=0)
        assert flow.take_delivered() == [0, 1, 2, 3, 4]
        assert flow.take_delivered() == []
        assert flow.packets_delivered == 5

    def test_tfrc_feedback_applied_on_delivery(self):
        topo = two_host_topology()
        flow = Flow(topo, 0, 2)
        initial_cap = flow.rate_cap_kbps()
        flow.begin_step(allocated_kbps=initial_cap, dt=1.0)
        flow.try_send(0)
        flow.deliver(flow.collect_sent(), lost=0)
        assert flow.rate_cap_kbps() > initial_cap  # slow-start doubling

    def test_demand_caps_rate(self):
        topo = two_host_topology()
        flow = Flow(topo, 0, 2, demand_kbps=48.0, use_tfrc=False)
        assert flow.rate_cap_kbps() == pytest.approx(48.0)
        flow.set_demand(12.0)
        assert flow.rate_cap_kbps() == pytest.approx(12.0)

    def test_negative_demand_rejected(self):
        topo = two_host_topology()
        flow = Flow(topo, 0, 2)
        with pytest.raises(ValueError):
            flow.set_demand(-5.0)

    def test_closed_flow_refuses_sends(self):
        topo = two_host_topology()
        flow = Flow(topo, 0, 2)
        flow.begin_step(allocated_kbps=120.0, dt=1.0)
        flow.close()
        assert not flow.try_send(0)

    def test_path_loss_recorded(self):
        topo = two_host_topology(loss=0.1)
        flow = Flow(topo, 0, 2)
        assert flow.path_loss == pytest.approx(1 - 0.9 * 0.9)

    def test_achieved_kbps(self):
        topo = two_host_topology()
        flow = Flow(topo, 0, 2)
        flow.begin_step(allocated_kbps=600.0, dt=1.0)
        for seq in range(50):
            flow.try_send(seq)
        flow.deliver(flow.collect_sent(), lost=0)
        assert flow.achieved_kbps(elapsed_s=1.0) == pytest.approx(600.0)
        assert flow.achieved_kbps(elapsed_s=0.0) == 0.0
