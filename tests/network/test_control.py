"""Tests for the typed control-plane channel."""

from dataclasses import dataclass

import pytest

from repro.network.control import CONTROL_HEADER_BYTES, ControlChannel, ControlMessage
from repro.network.stats import StatsCollector
from repro.topology.graph import Topology
from repro.topology.links import LinkType


@dataclass
class Ping(ControlMessage):
    payload: int = 0

    kind = "ping"

    def payload_bytes(self) -> int:
        return 8


def two_host_topology(delay_s=0.01, loss_rate=0.0):
    """client 10 -- router 1 -- client 11, identical duplex links."""
    topology = Topology()
    topology.add_node(1, "stub")
    topology.add_node(10, "client")
    topology.add_node(11, "client")
    topology.add_duplex_link(10, 1, LinkType.CLIENT_STUB, 10_000.0, delay_s, loss_rate)
    topology.add_duplex_link(1, 11, LinkType.CLIENT_STUB, 10_000.0, delay_s, loss_rate)
    return topology


class TestDelivery:
    def test_message_arrives_after_path_delay(self):
        channel = ControlChannel(two_host_topology(delay_s=0.4))
        received = []
        channel.send(Ping(src=10, dst=11), now=0.0)
        # Two 0.4 s hops: due at 0.8 s, not yet at 0.5.
        assert channel.pump(0.5, received.append) == 0
        assert channel.pump(1.0, received.append) == 1
        assert received[0].src == 10 and received[0].dst == 11

    def test_pump_delivers_in_arrival_order(self):
        channel = ControlChannel(two_host_topology(delay_s=0.01))
        received = []
        channel.send(Ping(src=10, dst=11, payload=1), now=0.0)
        channel.send(Ping(src=10, dst=11, payload=2), now=0.5)
        channel.pump(10.0, received.append)
        assert [message.payload for message in received] == [1, 2]

    def test_cascade_within_one_pump(self):
        """A reply sent from inside dispatch is delivered by the same pump."""
        channel = ControlChannel(two_host_topology(delay_s=0.01))
        log = []

        def dispatch(message):
            log.append((message.src, message.dst))
            if message.dst == 11 and len(log) == 1:
                channel.send(Ping(src=11, dst=10), now=0.1)

        channel.send(Ping(src=10, dst=11), now=0.0)
        channel.pump(1.0, dispatch)
        assert log == [(10, 11), (11, 10)]

    def test_charges_delivered_bytes_to_destination(self):
        stats = StatsCollector()
        channel = ControlChannel(two_host_topology(), stats=stats)
        channel.send(Ping(src=10, dst=11), now=0.0)
        channel.pump(1.0, lambda message: None)
        assert stats.node_counters(11).control_bytes == CONTROL_HEADER_BYTES + 8
        assert stats.node_counters(10).control_bytes == 0

    def test_rejects_self_addressed_messages(self):
        channel = ControlChannel(two_host_topology())
        with pytest.raises(ValueError):
            channel.send(Ping(src=10, dst=10), now=0.0)


class TestLoss:
    def test_extra_loss_rate_one_drops_everything(self):
        channel = ControlChannel(two_host_topology(), extra_loss_rate=1.0)
        assert not channel.send(Ping(src=10, dst=11), now=0.0)
        assert channel.pump(10.0, lambda message: None) == 0
        assert channel.dropped_count == 1
        assert channel.dropped_by_kind["ping"] == 1

    def test_path_loss_drops_a_fraction(self):
        channel = ControlChannel(two_host_topology(loss_rate=0.3), seed=3)
        outcomes = [channel.send(Ping(src=10, dst=11), now=0.0) for _ in range(300)]
        survived = sum(outcomes)
        # Two 30%-loss hops: survival 0.49; allow wide tolerance.
        assert 0.3 * 300 < survived < 0.7 * 300
        assert channel.dropped_count == 300 - survived

    def test_rejects_bad_loss_rate(self):
        with pytest.raises(ValueError):
            ControlChannel(two_host_topology(), extra_loss_rate=1.5)


class TestDownHosts:
    def test_messages_to_down_host_are_dropped(self):
        channel = ControlChannel(two_host_topology())
        channel.mark_down(11)
        assert not channel.send(Ping(src=10, dst=11), now=0.0)
        assert channel.is_down(11)

    def test_queued_messages_to_down_host_are_dropped_at_delivery(self):
        channel = ControlChannel(two_host_topology())
        channel.send(Ping(src=10, dst=11), now=0.0)
        channel.mark_down(11)
        assert channel.pump(10.0, lambda message: None) == 0
        assert channel.dropped_count == 1

    def test_down_host_cannot_send(self):
        channel = ControlChannel(two_host_topology())
        channel.mark_down(10)
        assert not channel.send(Ping(src=10, dst=11), now=0.0)

    def test_in_flight_messages_from_down_host_are_dropped(self):
        """A crashed host's messages die with it, even if already sent."""
        channel = ControlChannel(two_host_topology())
        channel.send(Ping(src=10, dst=11), now=0.0)
        channel.mark_down(10)
        assert channel.pump(10.0, lambda message: None) == 0
        assert channel.dropped_count == 1


class TestTapsAndCounters:
    def test_taps_see_sent_delivered_dropped(self):
        channel = ControlChannel(two_host_topology())
        events = []
        channel.taps.append(lambda event, time_s, message: events.append(event))
        channel.send(Ping(src=10, dst=11), now=0.0)
        channel.pump(1.0, lambda message: None)
        channel.mark_down(11)
        channel.send(Ping(src=10, dst=11), now=1.0)
        assert events == ["sent", "delivered", "sent", "dropped"]

    def test_describe_counts(self):
        channel = ControlChannel(two_host_topology(delay_s=1.0))
        channel.send(Ping(src=10, dst=11), now=0.0)
        summary = channel.describe()
        assert summary["sent"] == 1.0
        assert summary["pending"] == 1.0
        assert summary["delivered"] == 0.0
