"""Tests for the incremental allocation engine.

The engine's contract: after any sequence of flow creations, removals and
cap changes, ``solve()`` leaves :attr:`AllocationEngine.allocation` equal to
what a from-scratch ``max_min_allocation`` over the current flow population
would produce (up to float associativity — the engine may solve affected
regions in isolation), while touching only the affected region.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.allocation import AllocationEngine
from repro.network.fairshare import (
    AllocationRequest,
    max_min_allocation,
    single_pass_allocation,
)


def close(a, b):
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-6)


class TestEngineBasics:
    def test_single_flow_gets_bottleneck(self):
        engine = AllocationEngine({0: 1000.0, 1: 400.0})
        engine.submit(1, (0, 1), float("inf"))
        assert engine.solve() is True
        assert close(engine.allocation[1], 400.0)

    def test_clean_round_reuses_allocation(self):
        engine = AllocationEngine({0: 1000.0})
        engine.submit(1, (0,), 600.0)
        engine.solve()
        before = dict(engine.allocation)
        engine.submit(1, (0,), 600.0)  # unchanged cap: not dirty
        assert engine.solve() is False
        assert engine.allocation == before
        assert engine.stats.clean_steps == 1

    def test_cap_change_redistributes(self):
        engine = AllocationEngine({0: 1000.0})
        engine.submit(1, (0,), float("inf"))
        engine.submit(2, (0,), float("inf"))
        engine.solve()
        assert close(engine.allocation[1], 500.0)
        engine.submit(1, (0,), 100.0)
        assert engine.solve() is True
        assert close(engine.allocation[1], 100.0)
        assert close(engine.allocation[2], 900.0)

    def test_retire_frees_share_for_link_sharers(self):
        engine = AllocationEngine({0: 900.0})
        engine.submit(1, (0,), float("inf"))
        engine.submit(2, (0,), float("inf"))
        engine.solve()
        engine.retire(1)
        assert engine.solve() is True
        assert 1 not in engine.allocation
        assert close(engine.allocation[2], 900.0)

    def test_disjoint_component_untouched_by_churn(self):
        """A change in one component must not re-solve the other."""
        engine = AllocationEngine({0: 1000.0, 1: 800.0})
        engine.submit(1, (0,), float("inf"))
        engine.submit(2, (1,), float("inf"))
        engine.solve()
        flows_solved = engine.stats.flows_solved
        engine.submit(1, (0,), 250.0)
        engine.solve()
        # Only flow 1's component (one flow) re-solved.
        assert engine.stats.flows_solved == flows_solved + 1
        assert close(engine.allocation[1], 250.0)
        assert close(engine.allocation[2], 800.0)

    def test_zero_cap_flow_gets_zero_without_dirtying_others(self):
        engine = AllocationEngine({0: 1000.0})
        engine.submit(1, (0,), float("inf"))
        engine.solve()
        engine.submit(2, (0,), 0.0)
        engine.solve()
        assert engine.allocation[2] == 0.0
        assert close(engine.allocation[1], 1000.0)
        # Transitioning to a positive cap joins the constraint graph.
        engine.submit(2, (0,), float("inf"))
        engine.solve()
        assert close(engine.allocation[1], 500.0)
        assert close(engine.allocation[2], 500.0)

    def test_mark_all_dirty_forces_full_solve(self):
        engine = AllocationEngine({0: 1000.0, 1: 800.0})
        engine.submit(1, (0,), float("inf"))
        engine.submit(2, (1,), float("inf"))
        engine.solve()
        flows_solved = engine.stats.flows_solved
        engine.mark_all_dirty()
        assert engine.solve() is True
        assert engine.stats.flows_solved == flows_solved + 2

    def test_reset_capacities_forgets_state(self):
        engine = AllocationEngine({0: 1000.0})
        engine.submit(1, (0,), float("inf"))
        engine.solve()
        engine.reset_capacities({0: 200.0})
        assert not engine.tracks(1)
        engine.submit(1, (0,), float("inf"))
        engine.solve()
        assert close(engine.allocation[1], 200.0)

    def test_single_pass_solver_pluggable(self):
        engine = AllocationEngine({0: 1000.0}, solver="single_pass")
        engine.submit(1, (0,), float("inf"))
        engine.submit(2, (0,), 100.0)
        engine.solve()
        reference = single_pass_allocation(
            [
                AllocationRequest(1, (0,), float("inf")),
                AllocationRequest(2, (0,), 100.0),
            ],
            {0: 1000.0},
        )
        assert engine.allocation[1] == reference[1]
        assert engine.allocation[2] == reference[2]

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError, match="unknown solver"):
            AllocationEngine({}, solver="magic")


# --------------------------------------------------------------- property

_LINKS = list(range(6))
_CAPACITIES = {link: 400.0 + 120.0 * link for link in _LINKS}

_operation = st.one_of(
    st.tuples(
        st.just("create"),
        st.lists(st.sampled_from(_LINKS), min_size=1, max_size=3, unique=True),
        st.floats(min_value=0.0, max_value=2000.0),
    ),
    st.tuples(st.just("remove"), st.integers(min_value=0, max_value=30)),
    st.tuples(
        st.just("recap"),
        st.integers(min_value=0, max_value=30),
        st.floats(min_value=0.0, max_value=2000.0),
    ),
    st.just(("step",)),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(_operation, min_size=1, max_size=40))
def test_incremental_matches_from_scratch_after_arbitrary_ops(operations):
    """Hypothesis: engine == from-scratch max_min after any op sequence."""
    engine = AllocationEngine(_CAPACITIES)
    live = {}  # key -> (links, cap)
    next_key = 0
    for operation in operations:
        kind = operation[0]
        if kind == "create":
            _, links, cap = operation
            live[next_key] = (tuple(links), cap)
            engine.submit(next_key, tuple(links), cap)
            next_key += 1
        elif kind == "remove":
            if live:
                key = sorted(live)[operation[1] % len(live)]
                del live[key]
                engine.retire(key)
        elif kind == "recap":
            if live:
                key = sorted(live)[operation[1] % len(live)]
                links, _ = live[key]
                live[key] = (links, operation[2])
                engine.submit(key, links, operation[2])
        else:  # step: solve mid-sequence so later ops hit cached state
            engine.solve()
    engine.solve()

    requests = [
        AllocationRequest(flow_key=key, link_indices=links, cap_kbps=cap)
        for key, (links, cap) in live.items()
    ]
    reference = max_min_allocation(requests, _CAPACITIES)
    assert set(engine.allocation) == set(reference)
    for key, expected in reference.items():
        assert close(engine.allocation[key], expected), (
            key,
            engine.allocation[key],
            expected,
        )

    # Feasibility: no link's allocated sum exceeds its capacity.
    for link, capacity in _CAPACITIES.items():
        used = sum(
            engine.allocation[key]
            for key, (links, _) in live.items()
            if link in links
        )
        assert used <= capacity + 1e-5
