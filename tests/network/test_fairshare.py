"""Tests for the max-min fair-share allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.fairshare import (
    SOLVERS,
    AllocationRequest,
    max_min_allocation,
    register_solver,
    resolve_solver,
    single_pass_allocation,
)


def req(key, links, cap=float("inf")):
    return AllocationRequest(flow_key=key, link_indices=links, cap_kbps=cap)


class TestMaxMinAllocation:
    def test_single_flow_gets_bottleneck(self):
        allocation = max_min_allocation([req(1, [0, 1])], {0: 1000.0, 1: 400.0})
        assert allocation[1] == pytest.approx(400.0)

    def test_two_flows_share_bottleneck_equally(self):
        allocation = max_min_allocation(
            [req(1, [0]), req(2, [0])], {0: 1000.0}
        )
        assert allocation[1] == pytest.approx(500.0)
        assert allocation[2] == pytest.approx(500.0)

    def test_cap_limits_flow_and_frees_share(self):
        allocation = max_min_allocation(
            [req(1, [0], cap=100.0), req(2, [0])], {0: 1000.0}
        )
        assert allocation[1] == pytest.approx(100.0)
        assert allocation[2] == pytest.approx(900.0)

    def test_classic_parking_lot(self):
        # Flow A crosses links 0 and 1; flows B and C cross one link each.
        allocation = max_min_allocation(
            [req("a", [0, 1]), req("b", [0]), req("c", [1])],
            {0: 1000.0, 1: 1000.0},
        )
        assert allocation["a"] == pytest.approx(500.0)
        assert allocation["b"] == pytest.approx(500.0)
        assert allocation["c"] == pytest.approx(500.0)

    def test_unconstrained_flow_capped_by_demand_only(self):
        allocation = max_min_allocation([req(1, [], cap=250.0)], {})
        assert allocation[1] == pytest.approx(250.0)

    def test_zero_cap_gets_zero(self):
        allocation = max_min_allocation([req(1, [0], cap=0.0), req(2, [0])], {0: 600.0})
        assert allocation[1] == 0.0
        assert allocation[2] == pytest.approx(600.0)

    def test_empty_requests(self):
        assert max_min_allocation([], {0: 100.0}) == {}

    def test_no_allocation_exceeds_cap(self):
        requests = [req(i, [i % 3], cap=50.0 * (i + 1)) for i in range(6)]
        allocation = max_min_allocation(requests, {0: 120.0, 1: 500.0, 2: 80.0})
        for request in requests:
            assert allocation[request.flow_key] <= request.cap_kbps + 1e-6

    def test_link_capacity_never_exceeded(self):
        requests = [req(i, [0, 1 + (i % 2)]) for i in range(7)]
        capacities = {0: 900.0, 1: 300.0, 2: 450.0}
        allocation = max_min_allocation(requests, capacities)
        for link, capacity in capacities.items():
            used = sum(
                allocation[r.flow_key] for r in requests if link in r.link_indices
            )
            assert used <= capacity + 1e-6

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=4),
                st.floats(min_value=1.0, max_value=5000.0),
            ),
            min_size=1,
            max_size=15,
        ),
        st.dictionaries(
            st.integers(min_value=0, max_value=5),
            st.floats(min_value=10.0, max_value=10000.0),
            min_size=6,
            max_size=6,
        ),
    )
    def test_feasibility_property(self, flows, capacities):
        """Allocations are always feasible: within caps and link capacities."""
        requests = [req(i, links, cap) for i, (links, cap) in enumerate(flows)]
        allocation = max_min_allocation(requests, capacities)
        for request in requests:
            assert allocation[request.flow_key] <= request.cap_kbps + 1e-6
            assert allocation[request.flow_key] >= 0.0
        for link, capacity in capacities.items():
            used = sum(
                allocation[r.flow_key] for r in requests if link in r.link_indices
            )
            assert used <= capacity + 1e-5

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=3),
            min_size=2,
            max_size=10,
        )
    )
    def test_max_min_dominates_single_pass(self, flow_links):
        """Max-min never allocates less total bandwidth than the c/n estimate."""
        capacities = {i: 1000.0 for i in range(5)}
        requests = [req(i, links) for i, links in enumerate(flow_links)]
        better = max_min_allocation(requests, capacities)
        simple = single_pass_allocation(requests, capacities)
        assert sum(better.values()) >= sum(simple.values()) - 1e-6


class TestFrozenFlowBookkeepingRegression:
    """Freezing flows must never touch links that saturated the same round.

    The progressive-filling loop used to decrement ``flows_on_link`` for
    every link of every frozen flow, *including* links that had just
    saturated; saturated links now leave the working maps the moment they
    saturate, so their counts can neither go negative nor leak into later
    rounds' increments.  These scenarios pin the allocations in the corner
    cases that bookkeeping error would skew.
    """

    def test_flow_at_cap_on_link_saturating_same_round(self):
        # Flow 1 reaches its cap exactly when link 0 saturates (two freeze
        # reasons at once); flow 2 is frozen by the saturation; flow 3 keeps
        # filling on link 1 afterwards.
        allocation = max_min_allocation(
            [
                AllocationRequest(1, (0,), 300.0),
                AllocationRequest(2, (0, 1), float("inf")),
                AllocationRequest(3, (1,), float("inf")),
            ],
            {0: 600.0, 1: 1000.0},
        )
        assert allocation[1] == pytest.approx(300.0)
        assert allocation[2] == pytest.approx(300.0)
        assert allocation[3] == pytest.approx(700.0)

    def test_two_links_saturating_same_round_with_shared_flow(self):
        # Links 0 and 1 saturate in the same round; flow "shared" crosses
        # both, so its freeze must not double-touch either saturated link.
        allocation = max_min_allocation(
            [
                AllocationRequest("shared", (0, 1), float("inf")),
                AllocationRequest("a", (0,), float("inf")),
                AllocationRequest("b", (1,), float("inf")),
                AllocationRequest("free", (2,), float("inf")),
            ],
            {0: 400.0, 1: 400.0, 2: 900.0},
        )
        assert allocation["shared"] == pytest.approx(200.0)
        assert allocation["a"] == pytest.approx(200.0)
        assert allocation["b"] == pytest.approx(200.0)
        assert allocation["free"] == pytest.approx(900.0)

    def test_later_rounds_unaffected_by_earlier_saturation(self):
        # Parking-lot chain: link 0 saturates first, freezing flows 1 and 2;
        # the shares flows 3 and 4 then receive on links 1 and 2 depend on
        # accurate counts there — stale or negative counts from round one
        # would skew their increments.
        allocation = max_min_allocation(
            [
                AllocationRequest(1, (0, 1), float("inf")),
                AllocationRequest(2, (0, 2), float("inf")),
                AllocationRequest(3, (1,), float("inf")),
                AllocationRequest(4, (2,), float("inf")),
            ],
            {0: 200.0, 1: 1000.0, 2: 600.0},
        )
        assert allocation[1] == pytest.approx(100.0)
        assert allocation[2] == pytest.approx(100.0)
        assert allocation[3] == pytest.approx(900.0)
        assert allocation[4] == pytest.approx(500.0)

    def test_repeated_solves_are_stable(self):
        requests = [
            AllocationRequest(i, (i % 2, 2), 150.0 * (i + 1)) for i in range(5)
        ]
        capacities = {0: 300.0, 1: 250.0, 2: 700.0}
        first = max_min_allocation(requests, capacities)
        for _ in range(3):
            assert max_min_allocation(requests, capacities) == first


class TestSolverRegistry:
    def test_builtin_names(self):
        assert resolve_solver("max_min") is max_min_allocation
        assert resolve_solver("single_pass") is single_pass_allocation

    def test_callable_passthrough(self):
        def toy(requests, capacities):
            return {request.flow_key: 1.0 for request in requests}

        assert resolve_solver(toy) is toy

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown solver"):
            resolve_solver("nope")

    def test_register_and_replace_guard(self):
        def toy(requests, capacities):
            return {}

        register_solver("toy-solver", toy)
        try:
            assert resolve_solver("toy-solver") is toy
            with pytest.raises(ValueError, match="already registered"):
                register_solver("toy-solver", toy)
            register_solver("toy-solver", toy, replace=True)
        finally:
            SOLVERS.pop("toy-solver", None)


class TestSinglePassAllocation:
    def test_matches_paper_assumption(self):
        # Two flows share a 1000 Kbps link: each gets at most c/n = 500.
        allocation = single_pass_allocation(
            [req(1, [0]), req(2, [0], cap=100.0)], {0: 1000.0}
        )
        assert allocation[1] == pytest.approx(500.0)
        assert allocation[2] == pytest.approx(100.0)

    def test_bottleneck_minimum_over_path(self):
        allocation = single_pass_allocation([req(1, [0, 1])], {0: 800.0, 1: 200.0})
        assert allocation[1] == pytest.approx(200.0)

    def test_zero_cap_flow_consumes_no_share(self):
        # A zero-cap flow gets 0.0 and must not count toward any link's n,
        # matching max_min_allocation's treatment of idle flows.
        allocation = single_pass_allocation(
            [req(1, [0], cap=0.0), req(2, [0])], {0: 900.0}
        )
        assert allocation[1] == 0.0
        assert allocation[2] == pytest.approx(900.0)
