"""Tests for the statistics collector."""

import pytest

from repro.network.stats import StatsCollector
from repro.util.units import PACKET_SIZE_KBITS


class TestRecording:
    def test_receive_counters(self):
        stats = StatsCollector()
        stats.record_receive(1, sequence=10, duplicate=False, from_parent=True)
        stats.record_receive(1, sequence=10, duplicate=True, from_parent=False)
        counters = stats.node_counters(1)
        assert counters.raw_packets == 2
        assert counters.useful_packets == 1
        assert counters.duplicate_packets == 1
        assert counters.from_parent_packets == 1
        assert counters.duplicate_from_parent == 0

    def test_duplicate_from_parent_tracked(self):
        stats = StatsCollector()
        stats.record_receive(1, sequence=3, duplicate=True, from_parent=True)
        assert stats.node_counters(1).duplicate_from_parent == 1

    def test_control_bytes(self):
        stats = StatsCollector()
        stats.record_control(2, 500.0)
        stats.record_control(2, 250.0)
        assert stats.node_counters(2).control_bytes == 750.0

    def test_duplicate_ratio(self):
        stats = StatsCollector()
        for i in range(8):
            stats.record_receive(1, i, duplicate=False, from_parent=True)
        for i in range(2):
            stats.record_receive(1, i, duplicate=True, from_parent=False)
        assert stats.duplicate_ratio([1]) == pytest.approx(0.2)
        assert stats.duplicate_ratio([99]) == 0.0


class TestSampling:
    def test_interval_series(self):
        stats = StatsCollector()
        # 10 useful packets in 5 seconds at one node = 24 Kbps with 12-Kbit packets.
        for i in range(10):
            stats.record_receive(1, i, duplicate=False, from_parent=True)
        stats.sample_interval(5.0, 5.0, nodes=[1])
        series = stats.time_series("useful")
        assert series == [(5.0, pytest.approx(10 * PACKET_SIZE_KBITS / 5.0))]
        # Counters reset per interval.
        stats.sample_interval(10.0, 5.0, nodes=[1])
        assert stats.time_series("useful")[-1][1] == 0.0

    def test_interval_averages_over_nodes(self):
        stats = StatsCollector()
        for i in range(10):
            stats.record_receive(1, i, duplicate=False, from_parent=False)
        stats.sample_interval(5.0, 5.0, nodes=[1, 2])
        # Node 2 received nothing, so the average halves.
        assert stats.time_series("useful")[0][1] == pytest.approx(10 * PACKET_SIZE_KBITS / 5.0 / 2)

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            StatsCollector().sample_interval(5.0, 0.0, nodes=[1])

    def test_per_node_bandwidth_and_cdf(self):
        stats = StatsCollector()
        for i in range(10):
            stats.record_receive(1, i, duplicate=False, from_parent=False)
        for i in range(5):
            stats.record_receive(2, i, duplicate=False, from_parent=False)
        stats.sample_interval(5.0, 5.0, nodes=[1, 2])
        per_node = stats.per_node_bandwidth_at(5.0)
        assert per_node[1] > per_node[2]
        cdf = stats.bandwidth_cdf_at(5.0)
        assert len(cdf) == 2
        assert cdf[-1][1] == 1.0

    def test_empty_cdf(self):
        assert StatsCollector().bandwidth_cdf_at(10.0) == []


class TestDerivedMetrics:
    def test_control_overhead_kbps(self):
        stats = StatsCollector()
        stats.record_control(1, 12_500.0)  # 100 Kbit over 10 s = 10 Kbps
        assert stats.control_overhead_kbps([1], duration_s=10.0) == pytest.approx(10.0)
        assert stats.control_overhead_kbps([], duration_s=10.0) == 0.0
        assert stats.control_overhead_kbps([1], duration_s=0.0) == 0.0

    def test_average_useful_kbps(self):
        stats = StatsCollector()
        for i in range(100):
            stats.record_receive(1, i, duplicate=False, from_parent=False)
        assert stats.average_useful_kbps([1], duration_s=10.0) == pytest.approx(
            100 * PACKET_SIZE_KBITS / 10.0
        )

    def test_link_stress(self):
        stats = StatsCollector()
        stats.trace_sequences([5])
        stats.record_link_transmission(5, [0, 1])
        stats.record_link_transmission(5, [1, 2])
        stats.record_link_transmission(99, [0])  # untraced: ignored
        average, maximum = stats.link_stress()
        assert maximum == 2
        assert average == pytest.approx((1 + 2 + 1) / 3)

    def test_link_stress_empty(self):
        assert StatsCollector().link_stress() == (0.0, 0)
