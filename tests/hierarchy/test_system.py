"""ClusteredBullet: hierarchy behaviour — promotion, joins, targeting."""

import pytest

from repro.experiments.harness import ExperimentConfig
from repro.experiments.registry import get_system
from repro.experiments.session import ExperimentSession
from repro.hierarchy.clustering import (
    access_capacity_kbps,
    nearest_head,
)


def make_session(**overrides):
    parameters = dict(
        system="bullet-clustered",
        n_overlay=32,
        cluster_size=6,
        duration_s=30.0,
        seed=5,
    )
    parameters.update(overrides)
    return ExperimentSession(ExperimentConfig(**parameters))


class TestRegistration:
    def test_registered_with_hierarchical_capabilities(self):
        spec = get_system("bullet-clustered")
        assert spec.capabilities.hierarchical
        assert spec.capabilities.supports_fail_node
        assert spec.capabilities.supports_join
        assert not spec.uses_tree

    def test_builds_head_mesh_over_cluster_heads(self):
        session = make_session()
        system = session.system
        heads = [plan.head for plan in system.plans]
        assert sorted(system.mesh.tree.members()) == sorted(heads)
        assert system.mesh.tree.root == session.workload.source
        # Far fewer heads than participants: that is the scaling point.
        assert len(heads) < len(session.workload.participants) / 2

    def test_receivers_cover_all_live_non_source_members(self):
        session = make_session()
        receivers = session.system.receivers()
        expected = sorted(
            node
            for node in session.workload.participants
            if node != session.workload.source
        )
        assert receivers == expected


class TestDissemination:
    def test_interiors_receive_useful_packets(self):
        session = make_session()
        session.drive(30.0)
        system = session.system
        stats = session.simulator.stats
        interiors = [
            node
            for cluster in system._clusters
            for node in cluster.live_interiors()
        ]
        assert interiors
        receiving = [
            node for node in interiors if stats.node_counters(node).useful_packets > 0
        ]
        # The large majority of interiors receive a usable stream.
        assert len(receiving) >= 0.8 * len(interiors)

    def test_interior_never_outruns_its_head(self):
        session = make_session()
        session.drive(30.0)
        system = session.system
        system.receivers()  # barrier
        for cluster in system._clusters:
            head_total = system._mesh_seen[cluster.root]
            for node in cluster.live_interiors():
                assert cluster.count_of(node) <= head_total


class TestHeadFailure:
    def test_head_failure_promotes_fattest_survivor(self):
        session = make_session()
        session.drive(10.0)
        system = session.system
        cluster = system._clusters[1]
        old_head = cluster.root
        survivors = cluster.live_interiors()
        expected = min(
            survivors,
            key=lambda node: (-access_capacity_kbps(system.topology, node), node),
        )
        system.fail_node(old_head)
        assert cluster.root == expected
        assert old_head in system.mesh.failed
        assert old_head not in system.mesh.receivers()
        assert expected in system.mesh.receivers()
        session.drive(20.0)
        # The promoted head keeps feeding the cluster.
        stats = session.simulator.stats
        delivered = [
            stats.node_counters(node).useful_packets
            for node in cluster.live_interiors()
        ]
        assert all(count > 0 for count in delivered)

    def test_singleton_head_failure_kills_cluster(self):
        session = make_session()
        system = session.system
        cluster = system._clusters[1]
        for node in list(cluster.live_interiors()):
            system.fail_node(node)
        head = cluster.root
        system.fail_node(head)
        assert system._dead_clusters[1]
        assert head in system.mesh.failed
        assert head not in system.receivers()

    def test_source_failure_rejected(self):
        session = make_session()
        with pytest.raises(ValueError, match="source"):
            session.system.fail_node(session.workload.source)

    def test_unknown_node_rejected(self):
        session = make_session()
        with pytest.raises(ValueError, match="member"):
            session.system.fail_node(10**9)


class TestInteriorFailure:
    def test_failed_interior_leaves_receivers(self):
        session = make_session()
        system = session.system
        victim = system._clusters[1].live_interiors()[0]
        assert victim in system.receivers()
        system.fail_node(victim)
        assert victim not in system.receivers()


class TestJoin:
    def test_join_routes_to_nearest_cluster(self):
        session = make_session()
        system = session.system
        topology = session.workload.topology
        spare = sorted(
            host
            for host in topology.client_nodes
            if host not in set(session.workload.participants)
        )
        joiner = spare[0]
        heads = [cluster.root for cluster in system._clusters]
        expected_head = nearest_head(topology, heads, joiner)
        expected_cluster = system._cluster_of[expected_head]
        parent = system.add_node(joiner)
        assert system._cluster_of[joiner] == expected_cluster
        assert parent in system._clusters[expected_cluster].members
        assert joiner in system.receivers()

    def test_join_with_parent_pins_cluster(self):
        session = make_session()
        system = session.system
        topology = session.workload.topology
        spare = sorted(
            host
            for host in topology.client_nodes
            if host not in set(session.workload.participants)
        )
        anchor = system._clusters[2].live_interiors()[0]
        system.add_node(spare[0], parent=anchor)
        assert system._cluster_of[spare[0]] == 2

    def test_duplicate_join_rejected(self):
        session = make_session()
        system = session.system
        member = system._clusters[1].live_interiors()[0]
        with pytest.raises(ValueError, match="already"):
            system.add_node(member)


class TestTargetedOrder:
    def test_heads_ranked_by_blast_radius_before_interiors(self):
        session = make_session()
        system = session.system
        order = system.targeted_victim_order()
        heads = {
            cluster.root
            for index, cluster in enumerate(system._clusters)
            if not system._dead_clusters[index]
        }
        interiors = [node for node in order if node not in heads]
        ranked_heads = [node for node in order if node in heads]
        assert order[: len(ranked_heads)] == ranked_heads
        assert session.workload.source not in order
        assert interiors  # interiors follow the heads

    def test_session_targeted_churn_hits_heads_first(self):
        session = make_session(
            churn_failures=3, churn_strategy="targeted", churn_start_s=5.0
        )
        system = session.system
        heads = {
            cluster.root
            for index, cluster in enumerate(system._clusters)
            if not system._dead_clusters[index]
        }
        victims = [event.node for event in session.injector.events if not event.fired]
        assert victims
        assert all(victim in heads for victim in victims)

    def test_worst_case_failure_uses_blast_radius_ordering(self):
        # --fail-at has no dissemination tree to consult here; the session
        # must fall back to the system's own targeted_victim_order() and
        # fail its head with the widest blast radius.
        session = make_session(failure_at_s=10.0)
        expected = session.system.targeted_victim_order()[0]
        events = session.injector.events
        assert [event.node for event in events] == [expected]
        session.drive(30.0)
        assert events[0].fired
        assert expected not in session.system.receivers()


class TestSharding:
    def test_enable_sharding_after_step_rejected(self):
        session = make_session()
        session.drive(2.0)
        with pytest.raises(RuntimeError, match="first step"):
            session.system.enable_sharding(2)

    def test_double_enable_rejected(self):
        session = make_session()
        assert session.system.enable_sharding(2)
        try:
            with pytest.raises(RuntimeError, match="already"):
                session.system.enable_sharding(2)
        finally:
            session.system.shutdown_sharding()

    def test_hierarchical_skips_whole_overlay_route_warming(self):
        # Only heads (plus mid-run joiners) are warmed; a random interior
        # has no cached routing tree after construction.
        session = make_session()
        topology = session.workload.topology
        system = session.system
        interiors = system._clusters[1].live_interiors()
        engine = topology.routing
        heads = [cluster.root for cluster in system._clusters]
        assert all(node not in engine._trees for node in interiors)
        assert all(head in engine._trees for head in heads)
