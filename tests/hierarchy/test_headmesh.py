"""Shard-owned head meshes: cross-shard promotion and byte-identity.

At three hierarchy levels a failed super-head's mesh seat passes to the
fattest surviving leaf head of its group — a node whose cluster may be
owned by a *different* shard worker.  The coordinator must migrate the
mesh-seat ownership across shards and the promoted head's interior state
must keep flowing, with exports byte-identical to the serial run.
"""

import json

import pytest

from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.experiments.session import ExperimentSession
from repro.hierarchy.clustering import promotion_candidate

#: Three-level layout where the widest-blast-radius victim is a super-head
#: whose group successor lives on the other of two shards (probed offline;
#: the tests assert the cross-shard property rather than trusting it).
PARAMS = dict(
    system="bullet-clustered",
    n_overlay=80,
    cluster_size=6,
    duration_s=40.0,
    seed=3,
    hierarchy_levels=3,
)
WORKERS = 2


def cross_shard_super_head(system, workers):
    """A (super-head, successor) pair owned by different shard workers."""
    for head in sorted(system._mesh_seen):
        if head == system.source:
            continue
        mid = system._mids[system._mid_of[head]]
        survivors = mid.live_interiors()
        if not survivors:
            continue
        successor = promotion_candidate(
            system.topology,
            survivors,
            estimator=system._estimator,
            source=system.source,
        )
        if (
            system._cluster_of[head] % workers
            != system._cluster_of[successor] % workers
        ):
            return head, successor
    raise AssertionError("no cross-shard super-head in this layout")


def test_cross_shard_super_head_promotion_migrates_state():
    session = ExperimentSession(ExperimentConfig(**PARAMS))
    system = session.system
    head, successor = cross_shard_super_head(system, WORKERS)
    old_cluster = system._clusters[system._cluster_of[head]]
    new_cluster = system._clusters[system._cluster_of[successor]]
    if not system.enable_sharding(WORKERS):
        pytest.skip("fork start method unavailable")
    try:
        session.drive(10.0)
        system.fail_node(head)
        # The mesh seat crossed shards: the successor now drives the head
        # mesh from its own worker and feeds both head groups.
        assert head not in system._mesh_seen
        assert successor in system._mesh_seen
        assert successor in system.mesh.receivers()
        assert new_cluster.root == successor
        # The failed super-head's own leaf cluster promoted independently
        # and rejoined the group as a mid interior.
        assert old_cluster.root != head
        assert system._mid_of[old_cluster.root] == system._mid_of[successor]
        before = {
            node: session.simulator.stats.node_counters(node).useful_packets
            for cluster in (old_cluster, new_cluster)
            for node in cluster.live_interiors()
        }
        session.drive(30.0)
        system.receivers()  # barrier: flush interior windows into stats
        gained = [
            session.simulator.stats.node_counters(node).useful_packets
            - before[node]
            for node in before
        ]
        # Interior state migrated with the promotion: both affected
        # clusters keep receiving useful packets on their new shards.
        assert before
        assert all(delta > 0 for delta in gained)
    finally:
        system.shutdown_sharding()


def _export_fingerprint(shard_workers: int) -> str:
    config = ExperimentConfig(
        **PARAMS, failure_at_s=10.0, shard_workers=shard_workers
    )
    result = run_experiment(config)
    return json.dumps(
        {
            "useful": result.useful_series,
            "raw": result.raw_series,
            "from_parent": result.from_parent_series,
            "control": result.control_series,
            "duplicate_ratio": result.duplicate_ratio,
            "control_overhead_kbps": result.control_overhead_kbps,
            "bandwidth_cdf": result.bandwidth_cdf_final,
        },
        sort_keys=True,
    )


def test_cross_shard_promotion_exports_match_serial():
    # --fail-at targets the widest-blast-radius head: with this layout that
    # is a super-head whose promotion crosses shard boundaries (asserted
    # below), so the byte-diff covers the migration path end to end.
    probe = ExperimentSession(ExperimentConfig(**PARAMS))
    victim = probe.system.targeted_victim_order()[0]
    head, _ = cross_shard_super_head(probe.system, WORKERS)
    assert victim == head
    assert _export_fingerprint(0) == _export_fingerprint(WORKERS)
