"""Shard executors: serial vs process equality, barriers and lifecycle."""

import pytest

from repro.experiments.harness import ExperimentConfig
from repro.hierarchy.interior import ClusterShard, InteriorCluster
from repro.hierarchy.sharding import (
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardedSession,
)


def make_clusters(count=5, size=9):
    clusters = []
    base = 1
    for cluster_index in range(count):
        members = list(range(base, base + size))
        base += size
        caps = {node: 250.0 + 30.0 * (node % 6) for node in members}
        loss = {node: 0.005 * (node % 4) for node in members}
        clusters.append(
            InteriorCluster(
                members[0], members[1:], caps, loss,
                rate_kbps=600.0, dt=0.5, packet_kbits=12.0, fanout=3,
            )
        )
    return clusters


@pytest.fixture
def executors():
    serial = SerialShardExecutor(make_clusters())
    process = ProcessShardExecutor(make_clusters(), workers=2)
    yield serial, process
    process.shutdown()


class TestExecutorEquality:
    def test_windows_identical_across_barriers(self, executors):
        serial, process = executors
        for barrier in range(3):
            for step in range(17):
                deltas = [(step + barrier + index) % 5 for index in range(5)]
                serial.enqueue_step(deltas)
                process.enqueue_step(deltas)
            assert serial.flush() == process.flush()

    def test_mutations_identical(self, executors):
        serial, process = executors
        for step in range(20):
            deltas = [(step * 3 + index) % 4 for index in range(5)]
            serial.enqueue_step(deltas)
            process.enqueue_step(deltas)
        assert serial.flush() == process.flush()
        parents = []
        for executor in (serial, process):
            executor.fail_interior(1, executor.clusters[1].members[3])
            executor.promote(2, executor.clusters[2].members[4])
            parents.append(executor.add_interior(3, 900, 310.0, 0.002))
        assert parents[0] == parents[1]
        for step in range(20):
            deltas = [(step * 7 + index) % 3 for index in range(5)]
            serial.enqueue_step(deltas)
            process.enqueue_step(deltas)
        assert serial.flush() == process.flush()

    def test_mirror_structure_tracks_worker(self, executors):
        _, process = executors
        victim = process.clusters[1].members[2]
        process.fail_interior(1, victim)
        assert victim not in process.clusters[1].live_interiors()
        process.promote(4, process.clusters[4].members[1])
        assert process.clusters[4].root == process.clusters[4].members[0]


class TestClusterShard:
    """The fused multi-cluster stepper is byte-identical to scalar steps."""

    @staticmethod
    def _state(cluster):
        return (
            list(cluster.counts),
            list(cluster._cap_carry),
            list(cluster._loss_carry),
        )

    def test_fused_window_matches_scalar(self):
        scalar = make_clusters()
        fused = make_clusters()
        shard = ClusterShard(dict(enumerate(fused)))
        for barrier in range(3):
            window = [
                [(step * 5 + barrier + index) % 6 for step in range(23)]
                for index in range(5)
            ]
            for step in range(23):
                for cluster, deltas in zip(scalar, window):
                    cluster.step(deltas[step])
            shard.step_window(dict(enumerate(window)))
            reports = shard.take_windows()
            for index, cluster in enumerate(scalar):
                assert reports[index] == cluster.take_window()

    def test_fused_state_survives_mutations(self):
        scalar = make_clusters()
        fused = make_clusters()
        shard = ClusterShard(dict(enumerate(fused)))
        window = [[(index + step) % 4 for step in range(15)] for index in range(5)]
        for step in range(15):
            for cluster, deltas in zip(scalar, window):
                cluster.step(deltas[step])
        shard.step_window(dict(enumerate(window)))
        assert shard.take_windows() == {
            index: cluster.take_window() for index, cluster in enumerate(scalar)
        }
        scalar[1].fail_interior(scalar[1].members[3])
        shard.fail_interior(1, fused[1].members[3])
        scalar[2].promote(scalar[2].members[4])
        shard.promote(2, fused[2].members[4])
        assert scalar[3].add_interior(900, 310.0, 0.002) == shard.add_interior(
            3, 900, 310.0, 0.002
        )
        for step in range(15):
            for cluster, deltas in zip(scalar, window):
                cluster.step(deltas[step])
        shard.step_window(dict(enumerate(window)))
        assert shard.take_windows() == {
            index: cluster.take_window() for index, cluster in enumerate(scalar)
        }
        # Counts and carries — not just windows — agree after a sync.
        shard._sync_back()
        for reference, mirrored in zip(scalar, fused):
            assert self._state(reference) == self._state(mirrored)

    def test_mismatched_window_lengths_rejected(self):
        shard = ClusterShard(dict(enumerate(make_clusters(count=2))))
        with pytest.raises(ValueError, match="window length"):
            shard.step_window({0: [1, 2], 1: [1]})

    def test_negative_delta_rejected(self):
        shard = ClusterShard(dict(enumerate(make_clusters(count=2))))
        with pytest.raises(ValueError, match="non-negative"):
            shard.step_window({0: [1, -1], 1: [1, 1]})


class TestProcessExecutorLifecycle:
    def test_empty_flush_skips_round_trip(self):
        process = ProcessShardExecutor(make_clusters(), workers=2)
        try:
            assert process.flush() == [[] for _ in range(5)]
        finally:
            process.shutdown()

    def test_mutation_with_pending_steps_rejected(self):
        process = ProcessShardExecutor(make_clusters(), workers=2)
        try:
            process.enqueue_step([1, 1, 1, 1, 1])
            with pytest.raises(RuntimeError, match="flush"):
                process.fail_interior(0, process.clusters[0].members[1])
        finally:
            process.shutdown()

    def test_wrong_delta_length_rejected(self):
        process = ProcessShardExecutor(make_clusters(), workers=2)
        try:
            with pytest.raises(ValueError, match="per cluster"):
                process.enqueue_step([1, 2])
        finally:
            process.shutdown()

    def test_shutdown_idempotent(self):
        process = ProcessShardExecutor(make_clusters(), workers=2)
        process.shutdown()
        process.shutdown()

    def test_worker_cap_and_validation(self):
        with pytest.raises(ValueError, match="at least 2"):
            ProcessShardExecutor(make_clusters(), workers=1)
        process = ProcessShardExecutor(make_clusters(count=3), workers=8)
        try:
            assert process.workers == 3  # capped at cluster count
        finally:
            process.shutdown()


class TestShardedSession:
    def test_rejects_non_hierarchical_system(self):
        config = ExperimentConfig(
            system="bullet", n_overlay=12, duration_s=20.0, shard_workers=2
        )
        with pytest.raises(ValueError, match="sharded"):
            ShardedSession(config)

    def test_run_shards_and_tears_down(self):
        config = ExperimentConfig(
            system="bullet-clustered",
            n_overlay=24,
            cluster_size=6,
            duration_s=20.0,
            shard_workers=2,
            seed=3,
        )
        session = ShardedSession(config)
        assert session.system.sharded
        result = session.run()
        assert result.useful_series
        # Workers are gone; the executor tolerates repeated shutdown.
        session.system.shutdown_sharding()
