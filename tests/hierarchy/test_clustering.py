"""Proximity clustering, head election and nearest-cluster lookup."""

import pytest

from repro.experiments.workloads import build_workload
from repro.hierarchy.clustering import (
    access_capacity_kbps,
    access_router,
    elect_head,
    nearest_head,
    plan_clusters,
    promotion_candidate,
)


@pytest.fixture(scope="module")
def workload():
    return build_workload(n_overlay=40, seed=3)


class TestPlanClusters:
    def test_partition_covers_participants_exactly_once(self, workload):
        plans = plan_clusters(
            workload.topology, workload.source, workload.participants, 8
        )
        members = [node for plan in plans for node in plan.members()]
        assert sorted(members) == sorted(workload.participants)
        assert len(set(members)) == len(members)

    def test_source_leads_a_singleton_cluster(self, workload):
        plans = plan_clusters(
            workload.topology, workload.source, workload.participants, 8
        )
        assert plans[0].head == workload.source
        assert plans[0].interiors == ()

    def test_cluster_sizes_bounded(self, workload):
        plans = plan_clusters(
            workload.topology, workload.source, workload.participants, 8
        )
        for plan in plans[1:]:
            assert 1 <= len(plan.members()) <= 8

    def test_deterministic(self, workload):
        first = plan_clusters(
            workload.topology, workload.source, workload.participants, 8
        )
        second = plan_clusters(
            workload.topology, workload.source, workload.participants, 8
        )
        assert first == second

    def test_heads_have_fattest_uplink_in_cluster(self, workload):
        plans = plan_clusters(
            workload.topology, workload.source, workload.participants, 8
        )
        for plan in plans[1:]:
            head_cap = access_capacity_kbps(workload.topology, plan.head)
            for node in plan.interiors:
                assert head_cap >= access_capacity_kbps(workload.topology, node)

    def test_clusters_group_by_access_router(self, workload):
        # The proximity sort keys on the access router, so each cluster's
        # router fingerprints form a contiguous range of the sorted router
        # ids; two clusters only share a router at a chunk boundary.
        plans = plan_clusters(
            workload.topology, workload.source, workload.participants, 8
        )
        previous_max = None
        for plan in plans[1:]:
            routers = sorted(
                access_router(workload.topology, node) for node in plan.members()
            )
            if previous_max is not None:
                assert routers[0] >= previous_max
            previous_max = routers[-1]

    def test_rejects_bad_inputs(self, workload):
        with pytest.raises(ValueError, match="cluster_size"):
            plan_clusters(
                workload.topology, workload.source, workload.participants, 0
            )
        with pytest.raises(ValueError, match="source"):
            plan_clusters(workload.topology, -1, workload.participants, 8)


class TestElection:
    def test_elect_head_prefers_capacity_then_id(self, workload):
        members = [node for node in workload.participants if node != workload.source][:6]
        head = elect_head(workload.topology, members)
        head_cap = access_capacity_kbps(workload.topology, head)
        for node in members:
            cap = access_capacity_kbps(workload.topology, node)
            assert (head_cap, -head) >= (cap, -node) or head_cap > cap

    def test_promotion_uses_election_rule(self, workload):
        members = [node for node in workload.participants if node != workload.source][:6]
        assert promotion_candidate(workload.topology, members) == elect_head(
            workload.topology, members
        )

    def test_empty_cluster_rejected(self, workload):
        with pytest.raises(ValueError, match="empty"):
            elect_head(workload.topology, [])


class TestNearestHead:
    def test_picks_minimum_rtt_head(self, workload):
        participants = workload.participants
        heads = participants[:4]
        node = participants[10]
        chosen = nearest_head(workload.topology, heads, node)
        chosen_rtt, _ = workload.topology.round_trip(chosen, node)
        for head in heads:
            rtt, _ = workload.topology.round_trip(head, node)
            assert (chosen_rtt, chosen) <= (rtt, head)

    def test_no_heads_rejected(self, workload):
        with pytest.raises(ValueError, match="heads"):
            nearest_head(workload.topology, [], workload.source)
