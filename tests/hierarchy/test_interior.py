"""InteriorCluster: scalar/batch stepper equivalence and membership events.

The load-bearing property is byte-identity: the vectorized
:meth:`InteriorCluster.step_batch` must reproduce the scalar
:meth:`InteriorCluster.step` *exactly* — counts, delivery windows and both
fractional carries — because the sharded session's exports are byte-diffed
against the serial session's in CI.  Hypothesis drives that comparison over
random capacities, loss rates, fanouts and head-delta streams.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.hierarchy.interior import InteriorCluster


def make_cluster(
    n=12, fanout=3, caps=None, loss=None, rate_kbps=600.0, dt=0.5, packet_kbits=12.0
):
    members = list(range(1, n + 1))
    caps = caps or {node: 300.0 + 40.0 * (node % 7) for node in members}
    loss = loss or {node: 0.004 * (node % 5) for node in members}
    return InteriorCluster(
        members[0],
        members[1:],
        caps,
        loss,
        rate_kbps=rate_kbps,
        dt=dt,
        packet_kbits=packet_kbits,
        fanout=fanout,
    )


def assert_identical(scalar, batch):
    assert scalar.counts == batch.counts
    assert scalar.window == batch.window
    assert scalar._cap_carry == batch._cap_carry
    assert scalar._loss_carry == batch._loss_carry


class TestStepperEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=40),
        fanout=st.integers(min_value=1, max_value=6),
        cap_scale=st.floats(min_value=50.0, max_value=900.0),
        loss_scale=st.floats(min_value=0.0, max_value=0.05),
        deltas=st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=120),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_batch_matches_scalar_bit_for_bit(
        self, n, fanout, cap_scale, loss_scale, deltas, seed
    ):
        members = list(range(1, n + 1))
        caps = {node: cap_scale * (1 + (node * seed) % 5) for node in members}
        loss = {node: loss_scale * ((node + seed) % 3) / 3 for node in members}

        def build():
            return InteriorCluster(
                members[0], members[1:], caps, loss,
                rate_kbps=600.0, dt=0.5, packet_kbits=12.0, fanout=fanout,
            )

        scalar, batch = build(), build()
        for delta in deltas:
            scalar.step(delta)
        batch.step_batch(deltas)
        assert_identical(scalar, batch)
        assert scalar.take_window() == batch.take_window()

    def test_batch_split_invariance(self):
        # Replaying a window in two halves (two barriers) must equal one
        # replay: carries round-trip exactly through the numpy arrays.
        deltas = [(i * 11) % 7 for i in range(90)]
        whole, split = make_cluster(), make_cluster()
        whole.step_batch(deltas)
        split.step_batch(deltas[:37])
        split.take_window()
        split.step_batch(deltas[37:])
        assert whole.counts == split.counts
        assert whole._cap_carry == split._cap_carry
        assert whole._loss_carry == split._loss_carry

    def test_equivalence_survives_membership_events(self):
        scalar, batch = make_cluster(n=20), make_cluster(n=20)
        first = [(i * 13) % 6 for i in range(40)]
        for delta in first:
            scalar.step(delta)
        batch.step_batch(first)
        scalar.take_window(), batch.take_window()
        for cluster in (scalar, batch):
            cluster.fail_interior(7)
            cluster.promote(3)
            cluster.add_interior(99, 280.0, 0.006)
        second = [(i * 5) % 4 for i in range(40)]
        for delta in second:
            scalar.step(delta)
        batch.step_batch(second)
        assert_identical(scalar, batch)
        assert scalar.take_window() == batch.take_window()

    def test_empty_batch_is_a_no_op(self):
        cluster = make_cluster()
        before = list(cluster.counts)
        cluster.step_batch([])
        assert cluster.counts == before

    def test_negative_delta_rejected(self):
        cluster = make_cluster()
        with pytest.raises(ValueError, match="non-negative"):
            cluster.step(-1)
        with pytest.raises(ValueError, match="non-negative"):
            cluster.step_batch([1, -1])


class TestDissemination:
    def test_counts_flow_down_the_tree(self):
        cluster = make_cluster(n=10, loss={node: 0.0 for node in range(1, 11)})
        for _ in range(60):
            cluster.step(3)
        root_count = cluster.count_of(cluster.root)
        assert root_count == 180
        for node in cluster.live_interiors():
            assert 0 < cluster.count_of(node) <= root_count

    def test_child_never_exceeds_parent_before_mutations(self):
        cluster = make_cluster(n=15)
        for index in range(100):
            cluster.step((index * 7) % 5)
        for level in cluster._levels:
            for idx in level:
                assert cluster.counts[idx] <= cluster.counts[cluster._parent[idx]]

    def test_capacity_caps_throughput(self):
        # A 60 kbps access link moves at most 2.5 packets/step of 12 kbit
        # packets at dt=0.5; the child must trail an unconstrained parent.
        members = [1, 2]
        cluster = InteriorCluster(
            1, [2], {1: 900.0, 2: 60.0}, {1: 0.0, 2: 0.0},
            rate_kbps=600.0, dt=0.5, packet_kbits=12.0,
        )
        for _ in range(40):
            cluster.step(20)
        assert cluster.count_of(2) == 100  # 40 steps * 2.5 packets/step
        assert cluster.count_of(1) == 800
        assert members  # silence unused warning

    def test_loss_thins_deliveries_deterministically(self):
        lossless = InteriorCluster(
            1, [2], {1: 900.0, 2: 900.0}, {1: 0.0, 2: 0.0},
            rate_kbps=600.0, dt=0.5, packet_kbits=12.0,
        )
        lossy = InteriorCluster(
            1, [2], {1: 900.0, 2: 900.0}, {1: 0.0, 2: 0.1},
            rate_kbps=600.0, dt=0.5, packet_kbits=12.0,
        )
        for _ in range(100):
            lossless.step(10)
            lossy.step(10)
        assert lossy.count_of(2) < lossless.count_of(2)
        # Expected loss is exact over a long window: 10% of taken packets.
        taken = lossless.count_of(2)
        assert lossy.count_of(2) >= int(taken * 0.9) - 1

    def test_window_reports_only_nonzero_in_member_order(self):
        cluster = make_cluster(n=8)
        for _ in range(20):
            cluster.step(4)
        report = cluster.take_window()
        nodes = [node for node, _ in report]
        assert nodes == [node for node in cluster.members if node in nodes]
        assert all(useful > 0 for _, useful in report)
        assert cluster.take_window() == []


class TestMembership:
    def test_fail_interior_freezes_node_and_starves_subtree(self):
        cluster = make_cluster(n=10, loss={node: 0.0 for node in range(1, 11)})
        for _ in range(30):
            cluster.step(2)
        victim = cluster.members[1]  # a first-level child with descendants
        frozen = cluster.count_of(victim)
        cluster.fail_interior(victim)
        assert victim not in cluster.live_interiors()
        for _ in range(50):
            cluster.step(2)
        assert cluster.count_of(victim) == frozen
        # Its children drain up to the frozen count, then starve.
        children = [
            cluster.members[idx]
            for idx, parent in enumerate(cluster._parent)
            if parent >= 0 and cluster.members[parent] == victim
        ]
        for child in children:
            assert cluster.count_of(child) <= frozen

    def test_fail_root_requires_promote(self):
        cluster = make_cluster()
        with pytest.raises(ValueError, match="promote"):
            cluster.fail_interior(cluster.root)

    def test_double_fail_rejected(self):
        cluster = make_cluster()
        cluster.fail_interior(4)
        with pytest.raises(ValueError, match="already failed"):
            cluster.fail_interior(4)

    def test_promote_rehangs_survivors_and_keeps_counts(self):
        cluster = make_cluster(n=12)
        for _ in range(40):
            cluster.step(3)
        cluster.take_window()
        counts_before = {
            node: cluster.count_of(node) for node in cluster.live_interiors()
        }
        old_head = cluster.root
        cluster.promote(5)
        assert cluster.root == 5
        assert old_head not in cluster.members
        for node, count in counts_before.items():
            if node != 5:
                assert cluster.count_of(node) == count
        assert cluster._cap_carry == [0.0] * len(cluster.members)
        # The cluster keeps disseminating under the new head; a child whose
        # count exceeds its new parent simply waits (take clamps at zero).
        for _ in range(30):
            cluster.step(3)
        assert cluster.count_of(5) >= counts_before[5] + 90 - 1

    def test_promote_drops_failed_members(self):
        cluster = make_cluster(n=8)
        cluster.fail_interior(6)
        cluster.promote(3)
        assert 6 not in cluster.members

    def test_promote_rejects_failed_or_same_head(self):
        cluster = make_cluster()
        cluster.fail_interior(4)
        with pytest.raises(ValueError, match="failed"):
            cluster.promote(4)
        with pytest.raises(ValueError, match="differ"):
            cluster.promote(cluster.root)

    def test_add_interior_primes_at_parent_count(self):
        cluster = make_cluster(n=6)
        for _ in range(30):
            cluster.step(4)
        parent = cluster.add_interior(50, 400.0, 0.0)
        assert cluster.count_of(50) == cluster.count_of(parent)
        assert 50 in cluster.live_interiors()

    def test_add_interior_balances_fanout(self):
        cluster = make_cluster(n=4, fanout=2)
        joiners = list(range(100, 108))
        for joiner in joiners:
            cluster.add_interior(joiner, 300.0, 0.0)
        children = {}
        for idx, parent in enumerate(cluster._parent):
            if parent >= 0:
                children[parent] = children.get(parent, 0) + 1
        assert max(children.values()) <= 3  # fanout 2 plus one join overflow

    def test_duplicate_member_rejected(self):
        cluster = make_cluster()
        with pytest.raises(ValueError, match="already"):
            cluster.add_interior(cluster.members[2], 300.0, 0.0)

    def test_subtree_size_counts_live_descendants(self):
        cluster = make_cluster(n=10)
        total = sum(
            cluster.subtree_size(node)
            for node in cluster.members
            if cluster._parent[cluster._index[node]] == -1
        )
        assert total == len(cluster.members)
        cluster.fail_interior(9)
        assert cluster.subtree_size(9) == 0
