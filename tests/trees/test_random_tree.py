"""Tests for random and balanced tree construction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.trees.random_tree import build_balanced_tree, build_random_tree


class TestRandomTree:
    def test_spans_all_members(self):
        members = list(range(50))
        tree = build_random_tree(0, members, max_fanout=4, seed=1)
        assert tree.members() == members

    def test_respects_fanout(self):
        tree = build_random_tree(0, list(range(100)), max_fanout=3, seed=2)
        assert tree.max_fanout() <= 3

    def test_root_gets_full_fanout_by_default(self):
        tree = build_random_tree(0, list(range(40)), max_fanout=4, seed=3)
        assert len(tree.children(0)) == 4

    def test_root_fill_can_be_disabled(self):
        trees = [
            build_random_tree(0, list(range(40)), max_fanout=4, seed=seed, fill_root_first=False)
            for seed in range(8)
        ]
        fanouts = [len(tree.children(0)) for tree in trees]
        # Without the fill rule at least some seeds give the root < max fanout.
        assert any(f < 4 for f in fanouts)

    def test_deterministic_per_seed(self):
        a = build_random_tree(0, list(range(30)), seed=7)
        b = build_random_tree(0, list(range(30)), seed=7)
        assert a.as_parent_map() == b.as_parent_map()

    def test_different_seeds_differ(self):
        a = build_random_tree(0, list(range(30)), seed=1)
        b = build_random_tree(0, list(range(30)), seed=2)
        assert a.as_parent_map() != b.as_parent_map()

    def test_rejects_root_not_member(self):
        with pytest.raises(ValueError):
            build_random_tree(99, [0, 1, 2])

    def test_rejects_bad_fanout(self):
        with pytest.raises(ValueError):
            build_random_tree(0, [0, 1], max_fanout=0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=60), st.integers(min_value=1, max_value=6))
    def test_structural_invariants(self, n, fanout):
        members = list(range(n))
        tree = build_random_tree(0, members, max_fanout=fanout, seed=n)
        assert tree.members() == members
        assert tree.max_fanout() <= fanout
        # Every non-root node has exactly one parent that is a member.
        for node in members[1:]:
            assert tree.parent(node) in members


class TestBalancedTree:
    def test_minimum_height(self):
        tree = build_balanced_tree(0, list(range(15)), fanout=2)
        assert tree.height() == 3

    def test_spans_and_fanout(self):
        members = list(range(64))
        tree = build_balanced_tree(0, members, fanout=4)
        assert tree.members() == members
        assert tree.max_fanout() <= 4

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            build_balanced_tree(5, [0, 1, 2])
        with pytest.raises(ValueError):
            build_balanced_tree(0, [0, 1], fanout=0)
