"""Tests for the offline greedy bottleneck-bandwidth tree (OMBT)."""

import pytest

from repro.topology.generator import TopologyConfig, generate_topology, place_overlay_participants
from repro.topology.links import BandwidthClass, LinkType
from repro.topology.graph import Topology
from repro.trees.bottleneck_tree import (
    build_bottleneck_tree,
    estimate_overlay_link_throughput,
    tree_bottleneck_estimate,
)
from repro.trees.random_tree import build_random_tree


def small_workload(seed=3, n=14, bandwidth_class=BandwidthClass.MEDIUM):
    config = TopologyConfig(
        transit_routers=3,
        stub_domains=6,
        routers_per_stub=2,
        clients_per_stub=4,
        bandwidth_class=bandwidth_class,
        seed=seed,
    )
    topology = generate_topology(config)
    participants = place_overlay_participants(topology, n, seed=seed)
    return topology, participants


class TestThroughputEstimate:
    def test_bottleneck_capacity_bounds_estimate(self):
        topology, participants = small_workload()
        a, b = participants[0], participants[1]
        estimate = estimate_overlay_link_throughput(topology, a, b, {})
        assert estimate <= topology.path(a, b).bottleneck_kbps + 1e-9
        assert estimate > 0

    def test_existing_flows_reduce_estimate(self):
        topology, participants = small_workload()
        a, b = participants[0], participants[1]
        empty = estimate_overlay_link_throughput(topology, a, b, {})
        loaded_counts = {index: 3 for index in topology.path(a, b).links}
        loaded = estimate_overlay_link_throughput(topology, a, b, loaded_counts)
        assert loaded < empty

    def test_lossy_path_reduces_estimate(self):
        topology, participants = small_workload()
        a, b = participants[0], participants[1]
        clean = estimate_overlay_link_throughput(topology, a, b, {})
        for index in topology.path(a, b).links:
            topology.set_link_loss(index, 0.05)
        lossy = estimate_overlay_link_throughput(topology, a, b, {})
        assert lossy < clean


class TestBuildBottleneckTree:
    def test_spans_all_members(self):
        topology, participants = small_workload()
        tree = build_bottleneck_tree(topology, participants[0], participants)
        assert sorted(tree.members()) == sorted(participants)
        assert tree.root == participants[0]

    def test_fanout_limit_respected(self):
        topology, participants = small_workload()
        tree = build_bottleneck_tree(topology, participants[0], participants, max_fanout=3)
        assert tree.max_fanout() <= 3

    def test_deterministic(self):
        topology, participants = small_workload()
        a = build_bottleneck_tree(topology, participants[0], participants)
        b = build_bottleneck_tree(topology, participants[0], participants)
        assert a.as_parent_map() == b.as_parent_map()

    def test_impossible_fanout_raises(self):
        topology, participants = small_workload()
        with pytest.raises(ValueError):
            # fanout 0 means nothing can ever be attached.
            build_bottleneck_tree(topology, participants[0], participants, max_fanout=0)

    def test_better_bottleneck_than_random_tree(self):
        """The offline tree's bottleneck estimate should beat a random tree's."""
        topology, participants = small_workload(seed=9, bandwidth_class=BandwidthClass.LOW)
        source = participants[0]
        greedy = build_bottleneck_tree(topology, source, participants, max_fanout=4)
        random_tree = build_random_tree(source, participants, max_fanout=4, seed=1)
        greedy_bottleneck, _ = tree_bottleneck_estimate(topology, greedy)
        random_bottleneck, _ = tree_bottleneck_estimate(topology, random_tree)
        assert greedy_bottleneck >= random_bottleneck

    def test_avoids_low_capacity_first_hop_when_possible(self):
        """Greedy construction prefers a high-bandwidth hub over a weak link."""
        topo = Topology()
        topo.add_node(0, "stub")
        hosts = []
        for i in range(1, 5):
            topo.add_node(i, "client")
            hosts.append(i)
        # Host 1 (source) and host 2 have fat access links; 3 and 4 are thin.
        topo.add_duplex_link(1, 0, LinkType.CLIENT_STUB, 10_000.0, 0.005)
        topo.add_duplex_link(2, 0, LinkType.CLIENT_STUB, 10_000.0, 0.005)
        topo.add_duplex_link(3, 0, LinkType.CLIENT_STUB, 500.0, 0.005)
        topo.add_duplex_link(4, 0, LinkType.CLIENT_STUB, 400.0, 0.005)
        tree = build_bottleneck_tree(topo, 1, hosts, max_fanout=2)
        # Node 2 must be attached directly to the source (best link first).
        assert tree.parent(2) == 1


class TestTreeBottleneckEstimate:
    def test_per_edge_estimates_positive(self):
        topology, participants = small_workload()
        tree = build_bottleneck_tree(topology, participants[0], participants)
        bottleneck, per_edge = tree_bottleneck_estimate(topology, tree)
        assert len(per_edge) == len(participants) - 1
        assert all(rate > 0 for rate in per_edge.values())
        assert bottleneck == min(per_edge.values())
