"""Tests for the Overcast-like online tree construction."""

import pytest

from repro.topology.generator import TopologyConfig, generate_topology, place_overlay_participants
from repro.topology.links import BandwidthClass
from repro.trees.overcast import build_overcast_tree
from repro.trees.bottleneck_tree import tree_bottleneck_estimate, build_bottleneck_tree


def workload(seed=4, n=16):
    config = TopologyConfig(
        transit_routers=3,
        stub_domains=6,
        routers_per_stub=2,
        clients_per_stub=4,
        bandwidth_class=BandwidthClass.MEDIUM,
        seed=seed,
    )
    topology = generate_topology(config)
    participants = place_overlay_participants(topology, n, seed=seed)
    return topology, participants


class TestOvercastTree:
    def test_spans_all_members(self):
        topology, participants = workload()
        tree = build_overcast_tree(topology, participants[0], participants, seed=1)
        assert sorted(tree.members()) == sorted(participants)

    def test_fanout_bound(self):
        topology, participants = workload()
        tree = build_overcast_tree(topology, participants[0], participants, max_fanout=3, seed=1)
        assert tree.max_fanout() <= 3 + 1  # migration fallback may slightly exceed

    def test_deterministic_per_seed(self):
        topology, participants = workload()
        a = build_overcast_tree(topology, participants[0], participants, seed=5)
        b = build_overcast_tree(topology, participants[0], participants, seed=5)
        assert a.as_parent_map() == b.as_parent_map()

    def test_rejects_bad_parameters(self):
        topology, participants = workload()
        with pytest.raises(ValueError):
            build_overcast_tree(topology, participants[0], participants, bandwidth_tolerance=0.0)
        with pytest.raises(ValueError):
            build_overcast_tree(topology, participants[0], participants, max_fanout=0)
        with pytest.raises(ValueError):
            build_overcast_tree(topology, 999, participants)

    def test_online_tree_does_not_beat_offline(self):
        """Matches the paper: the online tree never beats the offline OMBT."""
        topology, participants = workload(seed=11)
        source = participants[0]
        online = build_overcast_tree(topology, source, participants, seed=2)
        offline = build_bottleneck_tree(topology, source, participants)
        online_bottleneck, _ = tree_bottleneck_estimate(topology, online)
        offline_bottleneck, _ = tree_bottleneck_estimate(topology, offline)
        assert online_bottleneck <= offline_bottleneck + 1e-6
