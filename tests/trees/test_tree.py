"""Tests for the overlay tree abstraction."""

import pytest

from repro.trees.tree import OverlayTree, tree_from_parent_map, validate_spans


def sample_tree():
    """
           0
         /   \\
        1     2
       / \\     \\
      3   4     5
                 \\
                  6
    """
    return OverlayTree(0, {1: 0, 2: 0, 3: 1, 4: 1, 5: 2, 6: 5})


class TestConstruction:
    def test_members(self):
        tree = sample_tree()
        assert tree.members() == [0, 1, 2, 3, 4, 5, 6]
        assert len(tree) == 7

    def test_root_cannot_have_parent(self):
        with pytest.raises(ValueError):
            OverlayTree(0, {0: 1, 1: 0})

    def test_unknown_parent_rejected(self):
        with pytest.raises(ValueError):
            OverlayTree(0, {1: 99})

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            OverlayTree(0, {1: 2, 2: 1})

    def test_tree_from_parent_map(self):
        tree = tree_from_parent_map(0, {1: 0})
        assert tree.members() == [0, 1]

    def test_validate_spans(self):
        tree = sample_tree()
        validate_spans(tree, range(7))
        with pytest.raises(ValueError):
            validate_spans(tree, range(8))


class TestQueries:
    def test_parent_children(self):
        tree = sample_tree()
        assert tree.parent(0) is None
        assert tree.parent(6) == 5
        assert tree.children(1) == [3, 4]
        assert tree.children(6) == []

    def test_leaves(self):
        assert sorted(sample_tree().leaves()) == [3, 4, 6]

    def test_depth_and_height(self):
        tree = sample_tree()
        assert tree.depth(0) == 0
        assert tree.depth(4) == 2
        assert tree.depth(6) == 3
        assert tree.height() == 3

    def test_descendants(self):
        tree = sample_tree()
        assert sorted(tree.descendants(1)) == [3, 4]
        assert sorted(tree.descendants(2)) == [5, 6]
        assert tree.descendant_count(0) == 6

    def test_subtree_and_non_descendants(self):
        tree = sample_tree()
        assert sorted(tree.subtree(2)) == [2, 5, 6]
        assert sorted(tree.non_descendants(2)) == [0, 1, 3, 4]
        # Non-descendants of the root is empty.
        assert tree.non_descendants(0) == []

    def test_ancestors_and_path(self):
        tree = sample_tree()
        assert tree.ancestors(6) == [5, 2, 0]
        assert tree.path_from_root(6) == [0, 2, 5, 6]

    def test_edges(self):
        tree = sample_tree()
        assert set(tree.edges()) == {(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (5, 6)}

    def test_max_fanout(self):
        assert sample_tree().max_fanout() == 2

    def test_is_leaf_and_contains(self):
        tree = sample_tree()
        assert tree.is_leaf(3)
        assert not tree.is_leaf(1)
        assert 5 in tree
        assert 99 not in tree


class TestMutation:
    def test_remove_subtree(self):
        tree = sample_tree()
        removed = tree.remove_subtree(2)
        assert sorted(removed) == [2, 5, 6]
        assert sorted(tree.members()) == [0, 1, 3, 4]
        assert tree.children(0) == [1]

    def test_remove_subtree_of_root_rejected(self):
        with pytest.raises(ValueError):
            sample_tree().remove_subtree(0)

    def test_remove_node_reparent_children(self):
        tree = sample_tree()
        orphans = tree.remove_node_reparent_children(2)
        assert orphans == [5]
        assert tree.parent(5) == 0
        assert 2 not in tree
        assert sorted(tree.members()) == [0, 1, 3, 4, 5, 6]

    def test_copy_is_independent(self):
        tree = sample_tree()
        clone = tree.copy()
        clone.remove_subtree(1)
        assert 3 in tree
        assert 3 not in clone

    def test_as_parent_map_round_trip(self):
        tree = sample_tree()
        rebuilt = OverlayTree(0, tree.as_parent_map())
        assert rebuilt.members() == tree.members()
        assert rebuilt.edges() == tree.edges()
