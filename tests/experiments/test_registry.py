"""Tests for the pluggable dissemination-system registry.

The headline scenario: register a toy system via ``@register_system`` and run
it end to end through :class:`ExperimentSession` — no harness edits needed.
"""

import pytest

from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.experiments.registry import (
    BuildContext,
    DisseminationSystem,
    available_systems,
    get_system,
    register_system,
    system_known,
    unregister_system,
)
from repro.experiments.session import ExperimentSession
from repro.util.units import PACKET_SIZE_KBITS


class StarBlast:
    """A toy system: the source streams directly to every receiver."""

    def __init__(self, simulator, source, members, rate_kbps):
        self.simulator = simulator
        self.source = source
        self.members = list(members)
        self.rate_kbps = rate_kbps
        self._received = {node: set() for node in self.members}
        self._next_sequence = 0
        self._carry = 0.0
        self.flows = {
            node: simulator.create_flow(
                source, node, label=f"star:{node}", demand_kbps=rate_kbps, use_tfrc=True
            )
            for node in self.members
            if node != source
        }

    def protocol_phase(self, now):
        for node, flow in self.flows.items():
            for sequence in flow.take_delivered():
                duplicate = sequence in self._received[node]
                self._received[node].add(sequence)
                self.simulator.stats.record_receive(
                    node, sequence, duplicate=duplicate, from_parent=True
                )
        packets = self.rate_kbps * self.simulator.dt / PACKET_SIZE_KBITS + self._carry
        count = int(packets)
        self._carry = packets - count
        for _ in range(count):
            sequence = self._next_sequence
            self._next_sequence += 1
            for flow in self.flows.values():
                flow.try_send(sequence)

    def receivers(self):
        return [node for node in self.members if node != self.source]


@pytest.fixture
def star_system():
    @register_system("star-test", uses_tree=False, description="toy star blast")
    def _build(ctx: BuildContext) -> StarBlast:
        return StarBlast(
            ctx.simulator, ctx.source, ctx.participants, ctx.config.stream_rate_kbps
        )

    yield "star-test"
    unregister_system("star-test")


class TestRegistry:
    def test_builtins_are_known(self):
        assert set(available_systems()) >= {"bullet", "stream", "gossip", "antientropy"}
        for name in ("bullet", "stream", "gossip", "antientropy"):
            assert system_known(name)
            assert get_system(name).name == name

    def test_gossip_is_treeless_and_stream_is_not(self):
        assert get_system("gossip").uses_tree is False
        assert get_system("stream").uses_tree is True

    def test_unknown_system_raises_with_available_names(self):
        with pytest.raises(KeyError, match="bullet"):
            get_system("ip-multicast")

    def test_duplicate_registration_rejected(self, star_system):
        with pytest.raises(ValueError, match="already registered"):
            register_system(star_system)(lambda ctx: None)

    def test_replace_allows_reregistration(self, star_system):
        sentinel = lambda ctx: None  # noqa: E731
        register_system(star_system, replace=True)(sentinel)
        assert get_system(star_system).build is sentinel

    def test_unregister_is_idempotent(self):
        unregister_system("never-registered")

    def test_builtin_names_are_reserved(self):
        # Even before the builtin module is imported, its name cannot be taken
        # by third-party code (it would shadow or wedge the deferred import).
        with pytest.raises(ValueError, match="reserved"):
            register_system("stream")(lambda ctx: None)
        with pytest.raises(ValueError, match="reserved"):
            register_system("bullet", replace=True)(lambda ctx: None)
        assert get_system("stream").name == "stream"

    def test_unregister_refuses_builtins(self):
        with pytest.raises(ValueError, match="built-in"):
            unregister_system("gossip")
        assert system_known("gossip")
        assert get_system("gossip").name == "gossip"


class TestCustomSystemEndToEnd:
    def test_toy_system_runs_through_session(self, star_system):
        config = ExperimentConfig(
            system=star_system, n_overlay=10, duration_s=40.0, seed=3
        )
        session = ExperimentSession(config)
        assert session.tree is None  # uses_tree=False
        assert isinstance(session.system, StarBlast)
        assert isinstance(session.system, DisseminationSystem)
        result = session.run()
        assert result.average_useful_kbps > 0
        assert len(result.useful_series) >= 6
        assert result.config.system == star_system

    def test_toy_system_runs_through_run_experiment(self, star_system):
        result = run_experiment(
            ExperimentConfig(system=star_system, n_overlay=8, duration_s=30.0, seed=5)
        )
        assert result.average_useful_kbps > 0

    def test_config_rejects_unregistered_names(self):
        with pytest.raises(ValueError):
            ExperimentConfig(system="star-test-not-registered")
