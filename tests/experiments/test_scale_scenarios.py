"""Tests for the scale scenario pack and the churn-failure session wiring."""

import pytest

from repro.experiments.harness import ExperimentConfig
from repro.experiments.session import ExperimentSession, SessionObserver
from repro.experiments.workloads import (
    SCALE_SCENARIOS,
    scale_scenario_names,
    scenario_config,
)


class TestScenarioRegistry:
    def test_expected_scenarios_registered(self):
        assert {"scale-500", "scale-1000", "flash-crowd", "churn-heavy"} <= set(
            scale_scenario_names()
        )

    def test_every_scenario_builds_a_config(self):
        for name in scale_scenario_names():
            config = scenario_config(name)
            assert isinstance(config, ExperimentConfig)
            # Every preset reaches at least 300 nodes — at the start of the
            # run or, for join scenarios, once the arrival wave lands.
            assert config.n_overlay + config.churn_joins >= 300

    def test_scenarios_have_descriptions(self):
        for scenario in SCALE_SCENARIOS.values():
            assert scenario.description

    def test_overrides_replace_scenario_values(self):
        config = scenario_config("scale-1000", n_overlay=40, duration_s=30.0, seed=9)
        assert config.n_overlay == 40
        assert config.duration_s == 30.0
        assert config.seed == 9

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            scenario_config("scale-9000")

    def test_churn_heavy_carries_churn(self):
        config = scenario_config("churn-heavy")
        assert config.churn_failures > 0

    def test_churn_adversarial_targets_interior_nodes(self):
        config = scenario_config("churn-adversarial")
        assert config.churn_failures > 0
        assert config.churn_strategy == "targeted"


class _ChurnProbe(SessionObserver):
    def __init__(self):
        self.failures = []

    def on_failure(self, session, now, node):
        self.failures.append((now, node))


class TestChurnSessions:
    def test_churn_failures_fire_spread_over_run(self):
        config = scenario_config(
            "churn-heavy",
            n_overlay=20,
            duration_s=50.0,
            churn_failures=4,
            churn_start_s=10.0,
        )
        probe = _ChurnProbe()
        session = ExperimentSession(config, observers=[probe])
        session.run()
        assert len(probe.failures) == 4
        times = [time for time, _ in probe.failures]
        assert min(times) >= 10.0
        assert max(times) <= config.duration_s
        assert len(set(node for _, node in probe.failures)) == 4
        source = session.workload.source
        assert all(node != source for _, node in probe.failures)

    def test_churn_is_seed_deterministic(self):
        config = scenario_config(
            "churn-heavy", n_overlay=20, duration_s=40.0, churn_failures=3
        )
        first, second = _ChurnProbe(), _ChurnProbe()
        ExperimentSession(config, observers=[first]).run()
        ExperimentSession(config, observers=[second]).run()
        assert len(first.failures) == 3
        assert first.failures == second.failures

    def test_short_run_still_fires_scenario_churn(self):
        """The scenario's churn_start_s=60 must clamp into a 30s smoke run."""
        config = scenario_config(
            "churn-heavy", n_overlay=15, duration_s=30.0, churn_failures=2
        )
        probe = _ChurnProbe()
        ExperimentSession(config, observers=[probe]).run()
        assert len(probe.failures) == 2

    def test_churn_requires_fail_node_support(self):
        config = ExperimentConfig(
            system="gossip", n_overlay=12, duration_s=20.0, churn_failures=2
        )
        with pytest.raises(ValueError, match="fail_node"):
            ExperimentSession(config)

    def test_flash_crowd_smoke(self):
        config = scenario_config("flash-crowd", n_overlay=15, duration_s=30.0)
        result = ExperimentSession(config).run()
        assert result.average_useful_kbps > 0.0

    def test_churn_adversarial_smoke_fails_high_impact_nodes(self):
        config = scenario_config(
            "churn-adversarial",
            n_overlay=18,
            duration_s=40.0,
            churn_failures=3,
            churn_start_s=10.0,
        )
        probe = _ChurnProbe()
        session = ExperimentSession(config, observers=[probe])
        tree = session.workload.tree
        interior = {node for node in tree.members() if tree.children(node)}
        session.run()
        assert len(probe.failures) == 3
        # Targeted churn goes after dissemination subtrees, so at least the
        # first victim must have been an interior node of the initial tree.
        assert probe.failures[0][1] in interior

    def test_scale_scenario_smoke_via_sweep_cli(self, capsys, tmp_path):
        from repro.cli import main

        code = main(
            [
                "sweep",
                "--scenario",
                "churn-heavy",
                "--systems",
                "bullet",
                "--seeds",
                "1",
                "--param",
                "n_overlay=14",
                "--param",
                "duration_s=20.0",
                "--param",
                "churn_failures=2",
                "--json",
            ]
        )
        assert code == 0
        assert '"mean"' in capsys.readouterr().out


class _JoinProbe(SessionObserver):
    def __init__(self):
        self.joins = []

    def on_join(self, session, now, node):
        self.joins.append((now, node))


class TestJoinSessions:
    def test_flash_crowd_joins_mid_run(self):
        config = scenario_config(
            "flash-crowd",
            n_overlay=12,
            churn_joins=8,
            duration_s=60.0,
            join_start_s=10.0,
            join_duration_s=15.0,
        )
        probe = _JoinProbe()
        session = ExperimentSession(config, observers=[probe])
        session.run()
        assert len(probe.joins) == 8
        times = [time for time, _ in probe.joins]
        assert min(times) >= 10.0
        assert max(times) <= 10.0 + 15.0 + 1.0
        # The overlay genuinely grew: joiners are live receivers now.
        assert len(session.system.receivers()) == 12 - 1 + 8
        participants = set(session.workload.participants)
        assert all(node not in participants for _, node in probe.joins)

    def test_joins_are_seed_deterministic(self):
        config = scenario_config(
            "flash-crowd", n_overlay=10, churn_joins=5, duration_s=40.0
        )
        first, second = _JoinProbe(), _JoinProbe()
        ExperimentSession(config, observers=[first]).run()
        ExperimentSession(config, observers=[second]).run()
        assert first.joins == second.joins
        assert len(first.joins) == 5

    def test_joins_combine_with_churn(self):
        config = scenario_config(
            "flash-crowd",
            n_overlay=12,
            churn_joins=6,
            churn_failures=3,
            duration_s=60.0,
        )
        join_probe = _JoinProbe()
        churn_probe = _ChurnProbe()
        session = ExperimentSession(config, observers=[join_probe, churn_probe])
        result = session.run()
        assert len(join_probe.joins) == 6
        assert len(churn_probe.failures) == 3
        assert result.average_useful_kbps > 0.0

    def test_gossip_supports_joins(self):
        config = ExperimentConfig(
            system="gossip", n_overlay=10, duration_s=30.0, churn_joins=4
        )
        probe = _JoinProbe()
        session = ExperimentSession(config, observers=[probe])
        session.run()
        assert len(probe.joins) == 4

    def test_joins_require_add_node_support(self):
        from repro.experiments.registry import register_system, unregister_system

        class _NoJoinSystem:
            def __init__(self, ctx):
                self.ctx = ctx

            def protocol_phase(self, now):
                pass

            def receivers(self):
                return []

        register_system("nojoin-toy", description="toy without add_node")(
            lambda ctx: _NoJoinSystem(ctx)
        )
        try:
            config = ExperimentConfig(
                system="nojoin-toy", n_overlay=8, duration_s=10.0, churn_joins=2
            )
            with pytest.raises(ValueError, match="add_node"):
                ExperimentSession(config)
        finally:
            unregister_system("nojoin-toy")

    def test_join_scenario_smoke_via_run_cli(self, capsys, tmp_path):
        from repro.cli import main

        csv_path = tmp_path / "series.csv"
        code = main(
            [
                "run",
                "--scenario",
                "flash-crowd",
                "--nodes",
                "10",
                "--joins",
                "6",
                "--duration",
                "30",
                "--csv",
                str(csv_path),
                "--json",
            ]
        )
        assert code == 0
        assert '"average_useful_kbps"' in capsys.readouterr().out
        assert csv_path.exists()
