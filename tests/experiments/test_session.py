"""Tests for the unified ExperimentSession drive loop and its observer API."""

import pytest

from repro.experiments.harness import ExperimentConfig
from repro.experiments.session import ExperimentSession, SessionObserver
from repro.experiments.workloads import build_workload
from repro.baselines.streaming import TreeStreaming
from repro.network.simulator import NetworkSimulator

FAST = dict(n_overlay=12, duration_s=40.0, sample_interval_s=5.0, seed=3)


class RecordingObserver(SessionObserver):
    def __init__(self):
        self.started = 0
        self.ended = 0
        self.steps = []
        self.samples = []
        self.failures = []
        self.result = None

    def on_start(self, session):
        self.started += 1

    def on_step(self, session, now):
        self.steps.append(now)

    def on_sample(self, session, now):
        self.samples.append(now)

    def on_failure(self, session, now, node):
        self.failures.append((now, node))

    def on_end(self, session, result):
        self.ended += 1
        self.result = result


class TestSessionConstruction:
    def test_builds_workload_simulator_and_system(self):
        session = ExperimentSession(ExperimentConfig(system="stream", **FAST))
        assert session.workload is not None
        assert session.simulator is not None
        assert session.system is not None
        assert session.tree is session.workload.tree

    def test_gossip_gets_no_tree(self):
        session = ExperimentSession(ExperimentConfig(system="gossip", **FAST))
        assert session.tree is None

    def test_failure_injection_with_treeless_system_rejected(self):
        with pytest.raises(ValueError, match="tree"):
            ExperimentSession(
                ExperimentConfig(system="gossip", failure_at_s=20.0, **FAST)
            )

    def test_bare_session_requires_simulator_and_system(self):
        with pytest.raises(ValueError):
            ExperimentSession()

    def test_foreign_simulator_without_workload_or_system_rejected(self):
        workload = build_workload(n_overlay=10, seed=3)
        simulator = NetworkSimulator(workload.topology, dt=1.0, seed=3)
        with pytest.raises(ValueError, match="explicit system or workload"):
            ExperimentSession(
                ExperimentConfig(system="stream", **FAST), simulator=simulator
            )

    def test_bare_session_rejects_run(self):
        workload = build_workload(n_overlay=10, seed=3)
        simulator = NetworkSimulator(workload.topology, dt=1.0, seed=3)
        system = TreeStreaming(simulator, workload.tree)
        session = ExperimentSession(simulator=simulator, system=system)
        with pytest.raises(ValueError, match="config"):
            session.run()


class TestObservers:
    def test_hooks_fire_in_a_plain_run(self):
        observer = RecordingObserver()
        config = ExperimentConfig(system="stream", **FAST)
        result = ExperimentSession(config, observers=[observer]).run()
        assert observer.started == 1
        assert observer.ended == 1
        assert observer.result is result
        assert len(observer.steps) == 40  # one per dt
        assert len(observer.samples) == len(result.useful_series)
        assert observer.failures == []

    def test_on_failure_reports_time_and_node(self):
        observer = RecordingObserver()
        config = ExperimentConfig(system="stream", failure_at_s=20.0, **FAST)
        session = ExperimentSession(config).add_observer(observer)
        result = session.run()
        assert result.failure_time_s == 20.0
        assert len(observer.failures) == 1
        failed_at, victim = observer.failures[0]
        assert failed_at == pytest.approx(20.0, abs=1.5)
        assert victim in session.tree.members()
        assert victim in session.system.failed

    def test_on_control_observes_the_bullet_control_plane(self):
        class ControlProbe(SessionObserver):
            def __init__(self):
                self.events = []

            def on_control(self, session, now, message, event):
                self.events.append((event, message.kind, now))

        probe = ControlProbe()
        config = ExperimentConfig(system="bullet", **FAST)
        ExperimentSession(config, observers=[probe]).run()
        events = {event for event, _, _ in probe.events}
        kinds = {kind for _, kind, _ in probe.events}
        assert {"sent", "delivered"} <= events
        assert {"ransub-collect", "ransub-distribute", "peering-request"} <= kinds

    def test_repeated_sessions_do_not_stack_channel_taps(self):
        """Only the driving session's tap stays installed across re-runs."""
        from repro.core.mesh import BulletMesh
        from repro.network.simulator import NetworkSimulator

        workload = build_workload(n_overlay=10, seed=3)
        simulator = NetworkSimulator(workload.topology, dt=1.0, seed=3)
        mesh = BulletMesh(simulator, workload.tree)
        mesh.run(10)
        mesh.run(10)  # each run() wraps a fresh internal session
        assert len(mesh.control_channel.taps) == 1

    def test_on_control_silent_for_systems_without_a_channel(self):
        class ControlProbe(SessionObserver):
            def __init__(self):
                self.events = []

            def on_control(self, session, now, message, event):
                self.events.append(event)

        probe = ControlProbe()
        ExperimentSession(
            ExperimentConfig(system="stream", **FAST), observers=[probe]
        ).run()
        assert probe.events == []

    def test_custom_probe_sees_live_state(self):
        class BandwidthProbe(SessionObserver):
            def __init__(self):
                self.totals = []

            def on_sample(self, session, now):
                series = session.simulator.stats.time_series("useful")
                self.totals.append(series[-1][1] if series else 0.0)

        probe = BandwidthProbe()
        ExperimentSession(
            ExperimentConfig(system="stream", **FAST), observers=[probe]
        ).run()
        assert len(probe.totals) >= 6
        assert max(probe.totals) > 0


class TestDrive:
    def test_drive_is_resumable_and_matches_one_shot(self):
        def streamed_total(chunks):
            workload = build_workload(n_overlay=10, seed=7)
            simulator = NetworkSimulator(workload.topology, dt=1.0, seed=7)
            system = TreeStreaming(simulator, workload.tree, stream_rate_kbps=600.0)
            session = ExperimentSession(simulator=simulator, system=system)
            for chunk in chunks:
                session.drive(chunk)
            return sum(
                simulator.stats.node_counters(node).useful_packets
                for node in system.receivers()
            )

        assert streamed_total([40.0]) == streamed_total([40.0])

    def test_system_run_convenience_uses_session(self):
        workload = build_workload(n_overlay=10, seed=7)
        simulator = NetworkSimulator(workload.topology, dt=1.0, seed=7)
        system = TreeStreaming(simulator, workload.tree, stream_rate_kbps=600.0)
        system.run(40.0)
        assert simulator.time == pytest.approx(40.0)
        assert simulator.stats.time_series("useful")

    def test_deterministic_vs_run_experiment(self):
        from repro.experiments.harness import run_experiment

        config = ExperimentConfig(system="stream", **FAST)
        direct = ExperimentSession(config).run()
        wrapped = run_experiment(config)
        assert direct.average_useful_kbps == pytest.approx(wrapped.average_useful_kbps)
        assert direct.useful_series == wrapped.useful_series
