"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestRunCommand:
    def test_stream_run_text_output(self, capsys):
        exit_code = main(
            ["run", "--system", "stream", "--nodes", "10", "--duration", "40", "--seed", "3"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "average_useful_kbps" in captured

    def test_bullet_run_json_and_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        exit_code = main(
            [
                "run", "--system", "bullet", "--nodes", "10", "--duration", "40",
                "--seed", "3", "--json", "--csv", str(csv_path),
            ]
        )
        assert exit_code == 0
        stdout = capsys.readouterr().out
        payload = json.loads(stdout[: stdout.rindex("}") + 1])
        assert payload["average_useful_kbps"] > 0
        assert csv_path.exists()

    def test_failure_injection_flag(self, capsys):
        exit_code = main(
            ["run", "--system", "bullet", "--nodes", "10", "--duration", "50",
             "--fail-at", "25", "--seed", "4"]
        )
        assert exit_code == 0

    def test_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            main(["run", "--system", "carrier-pigeon"])


class TestFigureCommand:
    def test_figure7_small(self, capsys):
        exit_code = main(["figure", "7", "--nodes", "10", "--duration", "40", "--seed", "3"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "useful_kbps" in payload

    def test_headline_small(self, capsys):
        exit_code = main(["figure", "headline", "--nodes", "10", "--duration", "40", "--seed", "3"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "duplicate_ratio" in payload

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "99"])
