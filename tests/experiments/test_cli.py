"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestRunCommand:
    def test_stream_run_text_output(self, capsys):
        exit_code = main(
            ["run", "--system", "stream", "--nodes", "10", "--duration", "40", "--seed", "3"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "average_useful_kbps" in captured

    def test_bullet_run_json_and_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        exit_code = main(
            [
                "run", "--system", "bullet", "--nodes", "10", "--duration", "40",
                "--seed", "3", "--json", "--csv", str(csv_path),
            ]
        )
        assert exit_code == 0
        stdout = capsys.readouterr().out
        payload = json.loads(stdout[: stdout.rindex("}") + 1])
        assert payload["average_useful_kbps"] > 0
        assert csv_path.exists()

    def test_failure_injection_flag(self, capsys):
        exit_code = main(
            ["run", "--system", "bullet", "--nodes", "10", "--duration", "50",
             "--fail-at", "25", "--seed", "4"]
        )
        assert exit_code == 0

    def test_no_step_engine_flag_matches_default(self, capsys):
        outputs = []
        for extra in ([], ["--no-step-engine"]):
            exit_code = main(
                ["run", "--system", "bullet", "--nodes", "10", "--duration",
                 "40", "--seed", "3", "--json", *extra]
            )
            assert exit_code == 0
            outputs.append(capsys.readouterr().out)
        # The step engine is a pure performance mode: disabling it must not
        # change a single exported byte.
        assert outputs[0] == outputs[1]

    def test_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            main(["run", "--system", "carrier-pigeon"])


class TestSweepCommand:
    FAST = ["--nodes", "10", "--duration", "30"]

    def test_sweep_two_systems_text_output(self, capsys):
        exit_code = main(
            ["sweep", "--systems", "stream,gossip", "--seeds", "1,2", *self.FAST]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "system=stream" in captured
        assert "system=gossip" in captured

    def test_sweep_json_reports_mean_and_ci(self, capsys):
        exit_code = main(
            ["sweep", "--systems", "stream", "--seeds", "1,2,3", "--json", *self.FAST]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        row = payload[0]
        assert row["group"] == {"system": "stream"}
        assert row["n"] == 3
        assert row["mean"] > 0
        assert row["ci95"] >= 0

    def test_sweep_extra_param_and_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "sweep.csv"
        exit_code = main(
            [
                "sweep", "--systems", "stream", "--seeds", "1",
                "--param", "stream_rate_kbps=300,600",
                "--csv", str(csv_path), *self.FAST,
            ]
        )
        assert exit_code == 0
        assert csv_path.exists()
        lines = csv_path.read_text().strip().splitlines()
        assert len(lines) == 1 + 2  # header + one row per swept rate

    def test_sweep_parallel_workers(self, capsys):
        exit_code = main(
            ["sweep", "--systems", "stream", "--seeds", "1,2", "--workers", "2",
             "--json", *self.FAST]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["n"] == 2

    def test_sweep_rejects_malformed_param(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--systems", "stream", "--param", "oops"])

    def test_sweep_rejects_system_and_seed_params(self):
        with pytest.raises(SystemExit, match="--systems"):
            main(["sweep", "--systems", "bullet", "--param", "system=stream,gossip"])
        with pytest.raises(SystemExit, match="--seeds"):
            main(["sweep", "--systems", "stream", "--param", "seed=1,2"])

    def test_sweep_rejects_unknown_system(self, capsys):
        exit_code = main(["sweep", "--systems", "carrier-pigeon", *self.FAST])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "must be one of" in err
        assert "bullet" in err


class TestFigureCommand:
    def test_figure7_small(self, capsys):
        exit_code = main(["figure", "7", "--nodes", "10", "--duration", "40", "--seed", "3"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "useful_kbps" in payload

    def test_headline_small(self, capsys):
        exit_code = main(["figure", "headline", "--nodes", "10", "--duration", "40", "--seed", "3"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "duplicate_ratio" in payload

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "99"])


class TestHierarchyFlagValidation:
    """--shard-workers / --hierarchy-levels range checks: usage errors with
    the valid range spelled out, exit code 2 — same ergonomics as unknown
    catalog ids.  Driven through a real subprocess so the exit code and
    stderr routing are the shipped behaviour, not test-harness artifacts."""

    def _run_cli(self, *args):
        import os
        import subprocess
        import sys
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "run", *args],
            capture_output=True,
            text=True,
            env=env,
        )

    def test_rejects_zero_shard_workers(self):
        completed = self._run_cli(
            "--system", "bullet-clustered", "--nodes", "12",
            "--duration", "20", "--shard-workers", "0",
        )
        assert completed.returncode == 2
        assert completed.stdout == ""
        assert "error:" in completed.stderr
        assert "--shard-workers must be >= 1" in completed.stderr
        assert "got 0" in completed.stderr

    def test_rejects_negative_hierarchy_levels(self):
        completed = self._run_cli(
            "--system", "bullet-clustered", "--nodes", "12",
            "--duration", "20", "--hierarchy-levels", "0",
        )
        assert completed.returncode == 2
        assert completed.stdout == ""
        assert "error:" in completed.stderr
        assert "--hierarchy-levels must be between 1 and 3" in completed.stderr
        assert "got 0" in completed.stderr

    def test_validation_runs_before_scenario_expansion(self):
        # Bad ranges fail fast even with a preset that would otherwise
        # pin its own shard/level values.
        completed = self._run_cli(
            "--scenario", "scale-100000", "--nodes", "96",
            "--cluster-size", "8", "--duration", "20",
            "--shard-workers", "-2",
        )
        assert completed.returncode == 2
        assert "--shard-workers must be >= 1" in completed.stderr

    def test_accepts_valid_ranges(self, capsys):
        exit_code = main(
            ["run", "--system", "bullet-clustered", "--nodes", "24",
             "--cluster-size", "6", "--duration", "20", "--seed", "3",
             "--shard-workers", "1", "--hierarchy-levels", "3", "--json"]
        )
        assert exit_code == 0
        assert "average_useful_kbps" in capsys.readouterr().out


class TestDeprecatedEngineFlags:
    @pytest.mark.parametrize(
        "flag, field",
        [
            ("--no-incremental", "incremental_allocation"),
            ("--no-incremental-protocol", "incremental_protocol"),
            ("--no-routing-engine", "routing_engine"),
            ("--no-step-engine", "step_engine"),
        ],
    )
    def test_no_flags_warn_and_name_the_replacement(self, capsys, flag, field):
        with pytest.warns(DeprecationWarning) as caught:
            exit_code = main(
                ["run", "--system", "bullet", "--nodes", "10",
                 "--duration", "30", "--seed", "3", flag]
            )
        assert exit_code == 0
        messages = [str(warning.message) for warning in caught]
        assert any(
            f"{flag} is deprecated; use --engines legacy"
            f" (or the {field} config field)" == message
            for message in messages
        )

    def test_consolidated_engines_flag_does_not_warn(self, capsys, recwarn):
        exit_code = main(
            ["run", "--system", "bullet", "--nodes", "10",
             "--duration", "30", "--seed", "3", "--engines", "legacy"]
        )
        assert exit_code == 0
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]
