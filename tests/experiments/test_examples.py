"""Smoke tests that the example scripts are importable and their pieces work.

The examples are user-facing entry points; running them end-to-end takes
minutes, so the tests exercise their helper functions and a shortened version
of each scenario instead.
"""

import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent.parent / "examples"


class TestExampleFiles:
    def test_all_examples_present(self):
        names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
        assert "quickstart.py" in names
        assert "video_streaming_failure.py" in names
        assert "file_distribution_erasure.py" in names
        assert "bandwidth_comparison.py" in names
        assert "scale_scenarios.py" in names

    @pytest.mark.parametrize(
        "script",
        ["quickstart.py", "video_streaming_failure.py", "file_distribution_erasure.py",
         "bandwidth_comparison.py", "scale_scenarios.py"],
    )
    def test_examples_compile(self, script):
        source = (EXAMPLES_DIR / script).read_text()
        compile(source, script, "exec")

    def test_examples_have_main_guard_and_docstring(self):
        for script in EXAMPLES_DIR.glob("*.py"):
            source = script.read_text()
            assert '__main__' in source, f"{script.name} is not runnable"
            assert source.lstrip().startswith(('#!', '"""')), f"{script.name} lacks a docstring"


class TestVideoStreamingScenario:
    def test_failure_scenario_helper_runs_small(self, monkeypatch):
        sys.path.insert(0, str(EXAMPLES_DIR))
        try:
            import video_streaming_failure as example

            monkeypatch.setattr(example, "DURATION_S", 40.0)
            monkeypatch.setattr(example, "FAILURE_AT_S", 20.0)
            result = example.run_with_failure("stream", seed=3)
            assert result["before_kbps"] > 0
            assert result["subtree_size"] >= 1
        finally:
            sys.path.remove(str(EXAMPLES_DIR))


class TestFileDistributionScenario:
    def test_make_file_and_codec_round_trip(self):
        sys.path.insert(0, str(EXAMPLES_DIR))
        try:
            import file_distribution_erasure as example
            from repro.encoding import TornadoCodec, join_blocks, split_into_blocks

            data = example.make_file(50_000)
            blocks = split_into_blocks(data, example.BLOCK_SIZE_BYTES)
            codec = TornadoCodec(stretch_factor=1.4, seed=7)
            packets = codec.encode(blocks)
            decoded = codec.decode(packets, len(blocks))
            assert join_blocks(decoded, 50_000) == data
        finally:
            sys.path.remove(str(EXAMPLES_DIR))


class TestScaleScenariosExample:
    def test_run_scenario_helper_at_tiny_scale(self):
        sys.path.insert(0, str(EXAMPLES_DIR))
        try:
            import scale_scenarios as example

            summary = example.run_scenario("churn-heavy", scale=0.05, seed=3)
            assert summary["average_useful_kbps"] > 0
            assert 0.0 <= summary["alloc_clean_fraction"] <= 1.0
        finally:
            sys.path.remove(str(EXAMPLES_DIR))
