"""Tests for metric helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.experiments.metrics import (
    SeriesSummary,
    cdf_from_values,
    fraction_below,
    improvement_factor,
    median_from_cdf,
    peak_value,
    steady_state_average,
    summarize_many,
    value_at,
    window_average,
)


SERIES = [(0.0, 0.0), (5.0, 100.0), (10.0, 200.0), (15.0, 400.0), (20.0, 400.0)]


class TestSeriesHelpers:
    def test_steady_state_average_uses_tail(self):
        # Last half of five samples = last 3 samples (index 2, 3, 4).
        assert steady_state_average(SERIES, tail_fraction=0.5) == pytest.approx(1000 / 3)

    def test_steady_state_empty(self):
        assert steady_state_average([]) == 0.0

    def test_steady_state_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            steady_state_average(SERIES, tail_fraction=0.0)

    def test_peak_and_value_at(self):
        assert peak_value(SERIES) == 400.0
        assert value_at(SERIES, 9.0) == 200.0
        assert value_at([], 5.0) == 0.0

    def test_window_average(self):
        assert window_average(SERIES, 5.0, 10.0) == pytest.approx(150.0)
        assert window_average(SERIES, 100.0, 200.0) == 0.0

    def test_improvement_factor(self):
        assert improvement_factor(400.0, 200.0) == pytest.approx(2.0)
        assert improvement_factor(100.0, 0.0) == float("inf")
        assert improvement_factor(0.0, 0.0) == 1.0

    def test_series_summary(self):
        summary = SeriesSummary.from_series(SERIES)
        assert summary.peak_kbps == 400.0
        assert summary.final_kbps == 400.0
        assert summary.steady_state_kbps > 0

    def test_summarize_many(self):
        summaries = summarize_many({"a": SERIES, "b": []})
        assert set(summaries) == {"a", "b"}
        assert summaries["b"].peak_kbps == 0.0


class TestCdfHelpers:
    def test_cdf_from_values(self):
        cdf = cdf_from_values([300.0, 100.0, 200.0])
        assert cdf == [(100.0, pytest.approx(1 / 3)), (200.0, pytest.approx(2 / 3)), (300.0, 1.0)]

    def test_cdf_empty(self):
        assert cdf_from_values([]) == []

    def test_fraction_below(self):
        cdf = cdf_from_values([100.0, 200.0, 300.0, 400.0])
        assert fraction_below(cdf, 250.0) == pytest.approx(0.5)
        assert fraction_below(cdf, 50.0) == 0.0

    def test_median(self):
        cdf = cdf_from_values([10.0, 20.0, 30.0, 40.0, 50.0])
        assert median_from_cdf(cdf) == 30.0
        assert median_from_cdf([]) == 0.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100))
    def test_cdf_monotone_property(self, values):
        cdf = cdf_from_values(values)
        fractions = [fraction for _, fraction in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)
        points = [value for value, _ in cdf]
        assert points == sorted(points)
