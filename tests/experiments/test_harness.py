"""Tests for the experiment harness (small, fast configurations)."""

import pytest

from repro.experiments.harness import (
    ExperimentConfig,
    run_experiment,
    run_planetlab_experiment,
)
from repro.topology.planetlab import PlanetLabConfig

FAST = dict(n_overlay=12, duration_s=50.0, sample_interval_s=5.0, seed=3)


class TestExperimentConfig:
    def test_rejects_unknown_system(self):
        with pytest.raises(ValueError):
            ExperimentConfig(system="ip-multicast")

    def test_rejects_bad_durations(self):
        with pytest.raises(ValueError):
            ExperimentConfig(duration_s=0)
        with pytest.raises(ValueError):
            ExperimentConfig(dt=0)
        with pytest.raises(ValueError):
            ExperimentConfig(sample_interval_s=0.1, dt=1.0)

    def test_bullet_config_inherits_rate_and_seed(self):
        config = ExperimentConfig(stream_rate_kbps=900.0, seed=11)
        bullet = config.bullet_config()
        assert bullet.stream_rate_kbps == 900.0
        assert bullet.seed == 11

    def test_rejects_bad_control_loss_rate(self):
        with pytest.raises(ValueError):
            ExperimentConfig(control_loss_rate=1.0)

    def test_control_loss_rate_reaches_every_channelled_system(self):
        from repro.experiments.session import ExperimentSession

        for system in ("bullet", "gossip", "antientropy"):
            config = ExperimentConfig(system=system, control_loss_rate=0.2, **FAST)
            session = ExperimentSession(config)
            assert session.system.control_channel.extra_loss_rate == 0.2, system


class TestRunExperiment:
    def test_bullet_run_produces_series_and_metrics(self):
        result = run_experiment(ExperimentConfig(system="bullet", tree_kind="random", **FAST))
        assert len(result.useful_series) >= 8
        assert result.average_useful_kbps > 0
        assert 0.0 <= result.duplicate_ratio < 1.0
        assert result.control_overhead_kbps >= 0.0
        assert result.bandwidth_cdf_final

    def test_stream_run(self):
        result = run_experiment(ExperimentConfig(system="stream", tree_kind="bottleneck", **FAST))
        assert result.average_useful_kbps > 0
        assert result.duplicate_ratio == 0.0

    def test_gossip_run(self):
        result = run_experiment(ExperimentConfig(system="gossip", **FAST))
        assert result.average_useful_kbps > 0

    def test_antientropy_run(self):
        result = run_experiment(ExperimentConfig(system="antientropy", tree_kind="random", **FAST))
        assert result.average_useful_kbps > 0

    def test_failure_injection_recorded(self):
        result = run_experiment(
            ExperimentConfig(system="bullet", failure_at_s=25.0, **FAST)
        )
        assert result.failure_time_s == 25.0

    def test_deterministic_given_seed(self):
        a = run_experiment(ExperimentConfig(system="stream", **FAST))
        b = run_experiment(ExperimentConfig(system="stream", **FAST))
        assert a.average_useful_kbps == pytest.approx(b.average_useful_kbps)

    def test_summary_shape(self):
        result = run_experiment(ExperimentConfig(system="stream", **FAST))
        summary = result.summary()
        assert summary.peak_kbps >= summary.steady_state_kbps * 0.5


class TestPlanetLabExperiment:
    def test_bullet_and_tree_runs(self):
        config = PlanetLabConfig(total_sites=14, europe_sites=4, seed=2)
        bullet = run_planetlab_experiment(
            system="bullet", tree_kind="random", duration_s=50.0, planetlab_config=config
        )
        tree = run_planetlab_experiment(
            system="stream", tree_kind="good", duration_s=50.0, planetlab_config=config
        )
        assert bullet.average_useful_kbps > 0
        assert tree.average_useful_kbps > 0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            run_planetlab_experiment(system="gossip")
        with pytest.raises(ValueError):
            run_planetlab_experiment(tree_kind="balanced")
