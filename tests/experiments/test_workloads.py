"""Tests for workload construction."""

import pytest

from repro.experiments.workloads import (
    build_planetlab_workload,
    build_workload,
    scaled_topology_config,
)
from repro.topology.links import BandwidthClass


class TestScaledTopologyConfig:
    def test_enough_clients_for_placement(self):
        for n in (10, 40, 100):
            config = scaled_topology_config(n, BandwidthClass.MEDIUM, seed=1)
            assert config.total_clients >= n

    def test_rejects_tiny_overlay(self):
        with pytest.raises(ValueError):
            scaled_topology_config(1, BandwidthClass.MEDIUM, seed=1)

    def test_scales_with_overlay_size(self):
        small = scaled_topology_config(20, BandwidthClass.MEDIUM, seed=1)
        large = scaled_topology_config(200, BandwidthClass.MEDIUM, seed=1)
        assert large.stub_domains > small.stub_domains


class TestBuildWorkload:
    def test_basic_structure(self):
        workload = build_workload(n_overlay=16, tree_kind="random", seed=3)
        assert len(workload.participants) == 16
        assert workload.source in workload.participants
        assert sorted(workload.tree.members()) == sorted(workload.participants)
        assert len(workload.receivers) == 15

    def test_rejects_unknown_tree(self):
        with pytest.raises(ValueError):
            build_workload(tree_kind="steiner")

    def test_lossy_flag_adds_loss(self):
        clean = build_workload(n_overlay=12, seed=4, lossy=False)
        lossy = build_workload(n_overlay=12, seed=4, lossy=True)
        assert all(link.loss_rate == 0.0 for link in clean.topology.links)
        assert any(link.loss_rate > 0.0 for link in lossy.topology.links)

    def test_deterministic_for_seed(self):
        a = build_workload(n_overlay=12, seed=5)
        b = build_workload(n_overlay=12, seed=5)
        assert a.participants == b.participants
        assert a.source == b.source
        assert a.tree.as_parent_map() == b.tree.as_parent_map()

    def test_bottleneck_and_overcast_trees_buildable(self):
        for kind in ("bottleneck", "overcast"):
            workload = build_workload(n_overlay=10, tree_kind=kind, seed=6)
            assert sorted(workload.tree.members()) == sorted(workload.participants)

    def test_bandwidth_class_propagates(self):
        low = build_workload(n_overlay=10, seed=7, bandwidth_class=BandwidthClass.LOW)
        assert low.bandwidth_class == BandwidthClass.LOW
        max_capacity = max(link.capacity_kbps for link in low.topology.links)
        assert max_capacity <= 4000.0  # Table 1: low transit-transit upper bound


class TestPlanetLabWorkload:
    def test_trees_span_sites(self):
        workload = build_planetlab_workload(seed=7)
        sites = set(workload.testbed.sites)
        assert set(workload.good_tree.members()) == sites
        assert set(workload.worst_tree.members()) == sites
        assert set(workload.random_tree.members()) == sites

    def test_source_is_testbed_root(self):
        workload = build_planetlab_workload(seed=7)
        assert workload.source == workload.testbed.root
        assert workload.good_tree.root == workload.source
