"""Tests for CSV export helpers."""

import csv

import pytest

from repro.experiments.export import (
    write_cdf_csv,
    write_result_csv,
    write_summary_csv,
    write_time_series_csv,
)
from repro.experiments.harness import ExperimentConfig, run_experiment


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestTimeSeriesCsv:
    def test_shared_time_column(self, tmp_path):
        path = write_time_series_csv(
            tmp_path / "series.csv",
            {"a": [(0.0, 1.0), (5.0, 2.0)], "b": [(5.0, 9.0), (10.0, 10.0)]},
        )
        rows = read_csv(path)
        assert rows[0] == ["time_s", "a", "b"]
        assert rows[1] == ["0.0", "1.0", ""]
        assert rows[2] == ["5.0", "2.0", "9.0"]
        assert rows[3] == ["10.0", "", "10.0"]

    def test_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError):
            write_time_series_csv(tmp_path / "x.csv", {})


class TestCdfCsv:
    def test_rows_written(self, tmp_path):
        path = write_cdf_csv(tmp_path / "cdf.csv", [(100.0, 0.5), (200.0, 1.0)])
        rows = read_csv(path)
        assert rows[0] == ["bandwidth_kbps", "fraction_of_nodes"]
        assert len(rows) == 3


class TestResultCsv:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            ExperimentConfig(system="stream", tree_kind="random", n_overlay=10, duration_s=40.0, seed=2)
        )

    def test_result_series_exported(self, tmp_path, result):
        path = write_result_csv(tmp_path / "result.csv", result)
        rows = read_csv(path)
        assert rows[0] == ["time_s", "useful_kbps", "raw_kbps", "from_parent_kbps", "control_kbps"]
        assert len(rows) > 3

    def test_summary_csv(self, tmp_path, result):
        path = write_summary_csv(tmp_path / "summary.csv", {"stream": result})
        rows = read_csv(path)
        assert rows[0][0] == "name"
        assert rows[1][0] == "stream"
        assert float(rows[1][1]) == pytest.approx(result.average_useful_kbps)

    def test_summary_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError):
            write_summary_csv(tmp_path / "empty.csv", {})
