"""The capability-declaring system API.

Every registered system carries a :class:`SystemCapabilities` declaration
on its spec; scenario code (sessions, the report matrix) consults the
declaration instead of hardcoded system lists.
"""

import pytest

from repro.experiments.harness import ExperimentConfig
from repro.experiments.registry import (
    BuildContext,
    SystemCapabilities,
    get_system,
    register_system,
    unregister_system,
)
from repro.experiments.session import ExperimentSession
from repro.report.catalog import system_supports_churn


class TestDeclarations:
    def test_defaults(self):
        caps = SystemCapabilities()
        assert caps.supports_fail_node
        assert caps.supports_join
        assert not caps.supports_multi_source
        assert not caps.hierarchical

    @pytest.mark.parametrize(
        "system, fail_node, join, hierarchical",
        [
            ("bullet", True, True, False),
            ("stream", True, True, False),
            ("antientropy", True, True, False),
            ("gossip", False, True, False),
            ("bullet-clustered", True, True, True),
        ],
    )
    def test_builtin_declarations(self, system, fail_node, join, hierarchical):
        caps = get_system(system).capabilities
        assert caps.supports_fail_node is fail_node
        assert caps.supports_join is join
        assert caps.hierarchical is hierarchical

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SystemCapabilities().supports_fail_node = False


class TestCapabilityQueries:
    def test_report_matrix_queries_declaration_not_a_hardcoded_list(self):
        assert system_supports_churn("bullet")
        assert system_supports_churn("bullet-clustered")
        assert not system_supports_churn("gossip")


class TestSessionEnforcement:
    def test_churn_rejected_by_declaration_before_hasattr(self):
        # A system *declaring* no fail_node support is rejected even if the
        # object happens to expose a fail_node attribute.
        @register_system(
            "declared-nofail-test",
            uses_tree=False,
            supports_fail_node=False,
            replace=True,
        )
        def _build(ctx: BuildContext):
            class Sys:
                def __init__(self):
                    self.simulator = ctx.simulator

                def protocol_phase(self, now):
                    pass

                def receivers(self):
                    return []

                def fail_node(self, node):  # pragma: no cover - never reached
                    pass

            return Sys()

        try:
            with pytest.raises(ValueError, match="fail_node"):
                ExperimentSession(
                    ExperimentConfig(
                        system="declared-nofail-test",
                        n_overlay=8,
                        duration_s=20.0,
                        churn_failures=2,
                    )
                )
        finally:
            unregister_system("declared-nofail-test")

    def test_join_rejected_by_declaration(self):
        @register_system(
            "declared-nojoin-test",
            uses_tree=False,
            supports_join=False,
            replace=True,
        )
        def _build(ctx: BuildContext):
            class Sys:
                def protocol_phase(self, now):
                    pass

                def receivers(self):
                    return []

            return Sys()

        try:
            with pytest.raises(ValueError, match="add_node"):
                ExperimentSession(
                    ExperimentConfig(
                        system="declared-nojoin-test",
                        n_overlay=8,
                        duration_s=20.0,
                        churn_joins=2,
                    )
                )
        finally:
            unregister_system("declared-nojoin-test")
