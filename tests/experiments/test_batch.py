"""Tests for run_batch / sweep and ResultSet aggregation."""

import dataclasses

import pytest

from repro.experiments.batch import ResultSet, run_batch, sweep
from repro.experiments.export import write_aggregate_csv
from repro.experiments.harness import ExperimentConfig

FAST = dict(n_overlay=10, duration_s=30.0, sample_interval_s=5.0)


def fast_config(**overrides):
    base = dict(system="stream", seed=1, **FAST)
    base.update(overrides)
    return ExperimentConfig(**base)


class TestRunBatch:
    def test_results_in_input_order(self):
        configs = [fast_config(seed=seed) for seed in (5, 3, 9)]
        results = run_batch(configs)
        assert [result.config.seed for result in results] == [5, 3, 9]

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            run_batch([fast_config()], workers=0)

    def test_parallel_identical_to_serial(self):
        """3 seeds × 2 systems: worker fan-out must not change any number."""
        configs = [
            fast_config(system=system, seed=seed)
            for system in ("stream", "gossip")
            for seed in (1, 2, 3)
        ]
        serial = run_batch(configs, workers=1)
        parallel = run_batch(configs, workers=3)
        assert len(serial) == len(parallel) == 6
        for left, right in zip(serial, parallel):
            assert left.config == right.config
            assert left.average_useful_kbps == right.average_useful_kbps
            assert left.duplicate_ratio == right.duplicate_ratio
            assert left.useful_series == right.useful_series


class TestSweep:
    def test_grid_times_seeds(self):
        results = sweep(
            fast_config(),
            {"system": ["stream", "gossip"]},
            seeds=[1, 2, 3],
        )
        assert len(results) == 6
        by_system = results.group_by("system")
        assert set(by_system) == {("stream",), ("gossip",)}
        for members in by_system.values():
            assert sorted(config.seed for config in members.configs) == [1, 2, 3]

    def test_defaults_to_base_seed(self):
        results = sweep(fast_config(seed=4), {"stream_rate_kbps": [300.0, 600.0]})
        assert len(results) == 2
        assert all(config.seed == 4 for config in results.configs)

    def test_rejects_unknown_parameter(self):
        with pytest.raises(ValueError, match="unknown"):
            sweep(fast_config(), {"warp_factor": [9]})

    def test_rejects_empty_seeds(self):
        with pytest.raises(ValueError, match="seed"):
            sweep(fast_config(), {}, seeds=[])


class TestResultSet:
    @pytest.fixture(scope="class")
    def results(self):
        return sweep(
            fast_config(),
            {"system": ["stream", "gossip"]},
            seeds=[1, 2, 3],
        )

    def test_aggregate_across_seeds_is_deterministic(self, results):
        rows = results.aggregate("average_useful_kbps", by=("system",))
        assert [row.group_dict["system"] for row in rows] == ["stream", "gossip"]
        again = results.aggregate("average_useful_kbps", by=("system",))
        for row, row2 in zip(rows, again):
            assert row == row2
            assert row.n == 3
            assert row.minimum <= row.mean <= row.maximum
            assert row.std >= 0.0
            # Student-t critical value for df=2 (n=3 seeds), not normal z.
            assert row.ci95 == pytest.approx(4.303 * row.std / 3**0.5)

    def test_aggregate_whole_set(self, results):
        (row,) = results.aggregate("duplicate_ratio")
        assert row.n == 6
        assert row.group == ()

    def test_where_and_filter(self, results):
        stream_only = results.where(system="stream")
        assert len(stream_only) == 3
        low_seed = results.filter(lambda result: result.config.seed == 1)
        assert len(low_seed) == 2

    def test_best_and_metric_values(self, results):
        best = results.best("average_useful_kbps")
        assert best.average_useful_kbps == max(
            results.metric_values("average_useful_kbps")
        )

    def test_slice_returns_resultset(self, results):
        head = results[:2]
        assert isinstance(head, ResultSet)
        assert len(head) == 2

    def test_empty_set_behaviour(self):
        empty = ResultSet([])
        assert empty.aggregate("average_useful_kbps") == []
        with pytest.raises(ValueError):
            empty.best()

    def test_aggregate_rows_export_to_csv(self, results, tmp_path):
        rows = results.aggregate("average_useful_kbps", by=("system", "seed"))
        path = write_aggregate_csv(tmp_path / "agg.csv", rows)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("system,seed,metric,n,mean")
        assert len(lines) == 1 + 6


class TestConfigPickling:
    def test_config_roundtrips_through_replace(self):
        config = fast_config(system="gossip", seed=2)
        clone = dataclasses.replace(config, seed=3)
        assert clone.system == "gossip"
        assert clone.seed == 3
