"""EngineModes consolidation: one switch for the four engine booleans.

``--engines legacy|incremental`` (and the ``engines`` config field) replace
the four independent ``--no-*`` flags, which remain as deprecated aliases.
The contract: the consolidated switch resolves to exactly the same four
booleans the flags used to set, per-field overrides still win, and the
deprecated flags warn but keep working.
"""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.experiments.harness import EngineModes, ExperimentConfig


class TestEngineModes:
    def test_parse_names(self):
        assert EngineModes.parse("incremental") == EngineModes.incremental()
        assert EngineModes.parse("legacy") == EngineModes.legacy()
        assert EngineModes.parse(None) == EngineModes.incremental()
        modes = EngineModes(allocation=False, protocol=True, routing=True, step=False)
        assert EngineModes.parse(modes) is modes

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="incremental"):
            EngineModes.parse("turbo")

    def test_incremental_is_all_on_legacy_all_off(self):
        on = EngineModes.incremental()
        assert (on.allocation, on.protocol, on.routing, on.step) == (
            True, True, True, True,
        )
        off = EngineModes.legacy()
        assert (off.allocation, off.protocol, off.routing, off.step) == (
            False, False, False, False,
        )


class TestConfigResolution:
    def test_default_resolves_to_incremental(self):
        config = ExperimentConfig()
        assert config.engines == EngineModes.incremental()
        assert config.incremental_allocation is True
        assert config.incremental_protocol is True
        assert config.routing_engine is True
        assert config.step_engine is True

    def test_legacy_mode_switches_all_four(self):
        config = ExperimentConfig(engines="legacy")
        assert config.incremental_allocation is False
        assert config.incremental_protocol is False
        assert config.routing_engine is False
        assert config.step_engine is False

    def test_explicit_field_overrides_mode(self):
        config = ExperimentConfig(engines="legacy", routing_engine=True)
        assert config.routing_engine is True
        assert config.incremental_allocation is False
        assert config.engines.routing is True

    def test_old_style_flags_still_work_without_engines(self):
        config = ExperimentConfig(incremental_allocation=False, step_engine=False)
        assert config.incremental_allocation is False
        assert config.step_engine is False
        assert config.incremental_protocol is True
        assert config.routing_engine is True

    def test_dataclasses_replace_round_trips(self):
        config = ExperimentConfig(engines="legacy")
        replaced = dataclasses.replace(config, seed=9)
        assert replaced.incremental_allocation is False
        assert replaced.step_engine is False
        assert replaced.seed == 9

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="engine mode"):
            ExperimentConfig(engines="warp")


class TestCliEngineFlags:
    RUN = ["run", "--system", "stream", "--nodes", "8", "--duration", "20",
           "--seed", "3", "--json"]

    def _payload(self, capsys, extra):
        assert main(self.RUN + extra) == 0
        stdout = capsys.readouterr().out
        return json.loads(stdout[: stdout.rindex("}") + 1])

    def test_engines_legacy_matches_four_no_flags(self, capsys):
        consolidated = self._payload(capsys, ["--engines", "legacy"])
        spelled_out = self._payload(
            capsys,
            ["--no-incremental", "--no-incremental-protocol",
             "--no-routing-engine", "--no-step-engine"],
        )
        assert consolidated == spelled_out

    def test_engines_incremental_matches_default(self, capsys):
        explicit = self._payload(capsys, ["--engines", "incremental"])
        default = self._payload(capsys, [])
        assert explicit == default

    def _run_subprocess(self, extra):
        # A real interpreter: DeprecationWarnings surface via the default
        # showwarning hook, so stderr routing is the shipped behaviour
        # rather than pytest's warning capture.
        import os
        import subprocess
        import sys
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *self.RUN, *extra],
            capture_output=True,
            text=True,
            env=env,
        )

    def test_deprecated_flags_warn_on_stderr(self):
        completed = self._run_subprocess(["--no-incremental"])
        assert completed.returncode == 0
        assert "DeprecationWarning" in completed.stderr
        assert "--no-incremental is deprecated" in completed.stderr
        assert "--engines legacy" in completed.stderr
        # stdout stays clean JSON despite the warning.
        json.loads(completed.stdout[: completed.stdout.rindex("}") + 1])

    def test_engines_flag_does_not_warn(self):
        completed = self._run_subprocess(["--engines", "legacy"])
        assert completed.returncode == 0
        assert "deprecated" not in completed.stderr
