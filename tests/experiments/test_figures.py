"""Smoke tests for the per-figure runners at a tiny scale.

These exercise the exact code paths the benchmark suite uses, checking result
structure and basic sanity (series exist, numbers are positive); the
full-scale shape checks live in ``benchmarks/``.
"""

import pytest

from repro.experiments.figures import (
    FigureScale,
    figure6_tree_streaming,
    figure7_bullet_random_tree,
    figure8_bandwidth_cdf,
    figure10_nondisjoint,
    figure13_failure_no_recovery,
    headline_metrics,
)

TINY = FigureScale(n_overlay=12, duration_s=50.0, seed=3)


class TestFigureRunners:
    def test_figure6_structure(self):
        data = figure6_tree_streaming(TINY)
        assert data["bottleneck_tree_kbps"] > 0
        assert data["random_tree_kbps"] > 0
        assert len(data["bottleneck_tree_series"]) >= 8

    def test_figure7_structure(self):
        data = figure7_bullet_random_tree(TINY)
        assert data["useful_kbps"] > 0
        assert data["raw_kbps"] >= data["useful_kbps"]
        assert 0.0 <= data["duplicate_ratio"] < 1.0
        assert data["control_overhead_kbps"] >= 0.0

    def test_figure8_reuses_result(self):
        base = figure7_bullet_random_tree(TINY)
        data = figure8_bandwidth_cdf(TINY, result=base["result"])
        assert data["cdf"]
        assert data["median_kbps"] >= 0.0
        fractions = [fraction for _, fraction in data["cdf"]]
        assert fractions == sorted(fractions)

    def test_figure10_structure(self):
        data = figure10_nondisjoint(TINY)
        assert data["disjoint_kbps"] > 0
        assert data["nondisjoint_kbps"] > 0

    def test_figure13_reports_before_and_after(self):
        data = figure13_failure_no_recovery(TINY)
        assert data["failure_time_s"] == pytest.approx(TINY.duration_s * 0.5)
        assert data["before_failure_kbps"] > 0
        assert data["after_failure_kbps"] >= 0

    def test_headline_metrics_keys(self):
        metrics = headline_metrics(TINY)
        assert set(metrics) == {
            "control_overhead_kbps",
            "duplicate_ratio",
            "link_stress_avg",
            "link_stress_max",
            "useful_kbps",
        }

    def test_figure_scale_config_overrides(self):
        config = TINY.config(system="stream", tree_kind="bottleneck")
        assert config.n_overlay == 12
        assert config.system == "stream"
        assert config.tree_kind == "bottleneck"
