"""Equivalence guards for the quiescence-aware step core.

The contract backing the CI ``perf-step`` job: with ``step_engine=True``
(the default) a session must export *byte-identically* to the legacy
every-node-every-step loop — across Bullet, all three baselines, mid-run
joins and failures — while actually skipping work (quiescence must engage,
or the flag is a no-op and the speedup a fiction).
"""

import filecmp

from repro.experiments.export import write_result_csv
from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.experiments.session import ExperimentSession
from repro.experiments.workloads import scenario_config


def _config(engine: bool, **overrides) -> ExperimentConfig:
    parameters = dict(
        system="bullet", n_overlay=16, duration_s=40.0, seed=5, step_engine=engine
    )
    parameters.update(overrides)
    return ExperimentConfig(**parameters)


def _assert_runs_match(on, off):
    assert on.useful_series == off.useful_series
    assert on.raw_series == off.raw_series
    assert on.control_series == off.control_series
    assert on.duplicate_ratio == off.duplicate_ratio
    assert on.control_overhead_kbps == off.control_overhead_kbps
    assert on.bandwidth_cdf_final == off.bandwidth_cdf_final


class TestModeEquivalence:
    def test_engine_exports_match_legacy_byte_for_byte(self, tmp_path):
        engine_on = run_experiment(_config(True))
        engine_off = run_experiment(_config(False))
        on_path = tmp_path / "engine.csv"
        off_path = tmp_path / "legacy.csv"
        write_result_csv(on_path, engine_on)
        write_result_csv(off_path, engine_off)
        assert filecmp.cmp(on_path, off_path, shallow=False)
        _assert_runs_match(engine_on, engine_off)

    def test_modes_match_under_flash_crowd_joins(self):
        # Joins arm fresh refresh wakeups mid-run, with staggered start_at
        # values that may lie in the past at attach time — the catch-up
        # firing must land on the same step as the legacy poll's.
        for engine in (True, False):
            config = scenario_config(
                "flash-crowd",
                n_overlay=12,
                churn_joins=10,
                join_start_s=8.0,
                join_duration_s=12.0,
                duration_s=40.0,
                sample_interval_s=4.0,
                step_engine=engine,
                seed=3,
            )
            if engine:
                engine_on = run_experiment(config)
            else:
                engine_off = run_experiment(config)
        _assert_runs_match(engine_on, engine_off)

    def test_modes_match_under_failures(self):
        # fail_node must disarm the dead node's refresh wakeup: a stale
        # wakeup would fire a refresh the legacy loop never runs.
        engine_on = run_experiment(_config(True, failure_at_s=20.0, duration_s=50.0))
        engine_off = run_experiment(_config(False, failure_at_s=20.0, duration_s=50.0))
        _assert_runs_match(engine_on, engine_off)

    def test_baselines_match_in_both_modes(self):
        for system in ("stream", "gossip", "antientropy"):
            engine_on = run_experiment(_config(True, system=system))
            engine_off = run_experiment(_config(False, system=system))
            _assert_runs_match(engine_on, engine_off)


class TestQuiescenceEngages:
    def test_engine_actually_skips_work(self):
        session = ExperimentSession(_config(True))
        for _ in range(40):
            session.step()
        described = session.step_engine.describe()
        # The overlay has 16 refresh timers plus the epoch timer; a 40-step
        # run at dt=1 with 5s periods must skip far more timer polls than
        # it fires, and fire some wakeups (epochs + refreshes).
        assert described["skipped"] > 0
        assert described["wakeups_fired_total"] > 0
        assert described["armed"] > 0

    def test_legacy_mode_has_no_engine(self):
        session = ExperimentSession(_config(False))
        assert session.step_engine is None
        for _ in range(10):
            session.step()
