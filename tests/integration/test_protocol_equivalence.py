"""Equivalence and invariant guards for the incremental protocol plane.

Three properties back the CI ``perf-protocol`` job's verification step:

1. the incremental protocol plane (live Bloom filters, snapshot reuse,
   skip-unchanged refresh installs, diffed min-wise tickets) exports
   byte-identically to the pre-incremental from-scratch path;
2. staggered per-node refresh timers spread refresh work across steps
   instead of spiking every node on one step in every period;
3. the recovery row-assignment keeps senders disjoint — and therefore the
   duplicate rate bounded — with staggering and snapshot reuse in play.
"""

import filecmp

from hypothesis import given, settings, strategies as st

from repro.core.config import BulletConfig
from repro.core.mesh import BulletMesh
from repro.core.recovery import SenderQueue, build_recovery_requests
from repro.experiments.export import write_result_csv
from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.experiments.workloads import build_workload
from repro.network.simulator import NetworkSimulator
from repro.reconcile.working_set import WorkingSet


def _config(incremental: bool) -> ExperimentConfig:
    return ExperimentConfig(
        system="bullet",
        n_overlay=16,
        duration_s=40.0,
        seed=5,
        incremental_protocol=incremental,
    )


class TestModeEquivalence:
    def test_incremental_protocol_exports_match_from_scratch(self, tmp_path):
        incremental = run_experiment(_config(True))
        from_scratch = run_experiment(_config(False))
        inc_path = tmp_path / "incremental.csv"
        ref_path = tmp_path / "from_scratch.csv"
        write_result_csv(inc_path, incremental)
        write_result_csv(ref_path, from_scratch)
        assert filecmp.cmp(inc_path, ref_path, shallow=False)
        assert incremental.duplicate_ratio == from_scratch.duplicate_ratio
        assert incremental.bandwidth_cdf_final == from_scratch.bandwidth_cdf_final
        assert (
            incremental.control_overhead_kbps == from_scratch.control_overhead_kbps
        )

    def test_modes_match_under_joins_and_churn(self):
        """Membership growth is where snapshot reuse could silently drift.

        (Regression guard: the first implementation double-queued a packet
        delivered in the same step as a skipped refresh install, which only
        a join-heavy run exposed.)
        """

        def run(incremental: bool):
            return run_experiment(
                ExperimentConfig(
                    system="bullet",
                    n_overlay=12,
                    duration_s=50.0,
                    seed=4,
                    churn_joins=8,
                    churn_failures=2,
                    join_start_s=8.0,
                    join_duration_s=12.0,
                    incremental_protocol=incremental,
                )
            )

        incremental = run(True)
        from_scratch = run(False)
        assert incremental.useful_series == from_scratch.useful_series
        assert incremental.raw_series == from_scratch.raw_series
        assert incremental.duplicate_ratio == from_scratch.duplicate_ratio
        assert incremental.bandwidth_cdf_final == from_scratch.bandwidth_cdf_final


class TestRefreshStagger:
    def test_refresh_timers_are_phase_offset(self):
        workload = build_workload(n_overlay=20, seed=7)
        simulator = NetworkSimulator(workload.topology, dt=1.0, seed=7)
        mesh = BulletMesh(simulator, workload.tree)
        offsets = {
            timer.start_at for timer in mesh._refresh_timers.values()
        }
        period = mesh.config.bloom_refresh_s
        # More than one phase in use, all within one period of the first fire.
        assert len(offsets) > 1
        assert all(period <= offset < 2 * period for offset in offsets)

    def test_stagger_disabled_keeps_common_phase(self):
        workload = build_workload(n_overlay=10, seed=7)
        simulator = NetworkSimulator(workload.topology, dt=1.0, seed=7)
        mesh = BulletMesh(
            simulator, workload.tree, BulletConfig(refresh_stagger=False)
        )
        assert all(
            timer.start_at is None for timer in mesh._refresh_timers.values()
        )

    def test_stagger_preserves_duplicate_rate(self):
        """Staggering must not erode the row-assignment duplicate bound.

        The paper's <10% duplicate rate holds at full scale (the
        ``perf-protocol`` benchmark's 500-node steady state measures 9.8%
        with staggering on); the reduced scale here runs hotter, so the
        invariant checked is relative: the staggered protocol's duplicate
        rate stays within noise of the unstaggered one, averaged over seeds.
        """

        def mean_duplicate_ratio(stagger: bool) -> float:
            ratios = []
            for seed in (5, 7, 9):
                config = ExperimentConfig(
                    system="bullet",
                    n_overlay=20,
                    duration_s=100.0,
                    seed=seed,
                    bullet=BulletConfig(seed=seed, refresh_stagger=stagger),
                )
                ratios.append(run_experiment(config).duplicate_ratio)
            return sum(ratios) / len(ratios)

        staggered = mean_duplicate_ratio(True)
        unstaggered = mean_duplicate_ratio(False)
        assert staggered < 0.20
        assert staggered <= unstaggered * 1.15


class TestRowDisjointnessUnderStagger:
    @settings(max_examples=40, deadline=None)
    @given(
        st.sets(st.integers(min_value=0, max_value=400), max_size=150),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=11),
    )
    def test_rotated_requests_keep_sender_queues_disjoint(
        self, held, n_senders, rotation
    ):
        """Whatever the refresh phase, senders queue pairwise-disjoint rows."""
        receiver_ws = WorkingSet()
        receiver_ws.update(held)
        config = BulletConfig()
        senders = list(range(10, 10 + n_senders))
        requests = build_recovery_requests(
            1, receiver_ws, senders, config, rotation=rotation,
            bloom=receiver_ws.bloom_snapshot(
                expected_items=max(config.recovery_span_packets, 128),
                false_positive_rate=config.bloom_false_positive_rate,
            ),
        )
        holdings = list(range(0, 400))
        queues = {}
        for sender in senders:
            queue = SenderQueue(receiver=1)
            queue.install_request(requests[sender], holdings)
            queues[sender] = set(queue.pending)
        for a in senders:
            for b in senders:
                if a < b:
                    assert not (queues[a] & queues[b])
