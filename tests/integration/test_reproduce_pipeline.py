"""End-to-end reproduction pipeline runs through the real CLI process.

The determinism contract under test: two ``reproduce`` runs of the same
tier and seed, under *different* ``PYTHONHASHSEED`` values, must produce
byte-identical per-experiment exports and manifests.  Wall-clock lives in
the separate ``timing.json`` (and in the rendered reports), which is the
only output allowed to differ.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

#: A fast cross-section of the catalog: one figure comparison, the Table 1
#: verification and a failure-recovery run — seconds at smoke scale.
SUBSET = "fig6,fig14,table1"


def _reproduce(out_dir, hashseed, extra=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONHASHSEED"] = str(hashseed)
    return subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "reproduce",
            "--tier", "smoke", "--only", SUBSET, "--out", str(out_dir),
            *extra,
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )


class TestReproducePipeline:
    def test_end_to_end_manifest_reports_and_hashseed_stability(self, tmp_path):
        run_a = _reproduce(tmp_path / "a", hashseed=1)
        assert run_a.returncode == 0, run_a.stdout + run_a.stderr
        run_b = _reproduce(tmp_path / "b", hashseed=2)
        assert run_b.returncode == 0, run_b.stdout + run_b.stderr

        dir_a = tmp_path / "a" / "smoke"
        dir_b = tmp_path / "b" / "smoke"

        # Completeness: every selected experiment recorded complete, with
        # its export present and reports rendered.
        manifest = json.loads((dir_a / "manifest.json").read_text())
        selected = SUBSET.split(",")
        assert sorted(manifest["experiments"]) == sorted(selected)
        for experiment_id in selected:
            record = manifest["experiments"][experiment_id]
            assert record["status"] == "complete"
            assert (dir_a / record["export"]).exists()
            assert record["digest"].startswith("sha256:")
        assert (dir_a / "report.md").exists()
        assert (dir_a / "report.html").exists()
        assert (dir_a / "timing.json").exists()

        # Byte-identity across hash seeds: manifest and every export.
        assert (dir_a / "manifest.json").read_bytes() == (
            dir_b / "manifest.json"
        ).read_bytes()
        for experiment_id in selected:
            assert (dir_a / f"{experiment_id}.json").read_bytes() == (
                dir_b / f"{experiment_id}.json"
            ).read_bytes(), experiment_id

    def test_resume_skips_and_only_backfills(self, tmp_path):
        first = _reproduce(tmp_path, hashseed=1)
        assert first.returncode == 0, first.stdout + first.stderr

        # Resume: nothing re-runs.
        second = _reproduce(tmp_path, hashseed=1, extra=("--json",))
        assert second.returncode == 0
        payload = json.loads(second.stdout)
        assert sorted(payload["skipped"]) == sorted(SUBSET.split(","))
        assert payload["completed"] == []

        # --only backfills into the same run directory without disturbing
        # the experiments already recorded.
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["PYTHONHASHSEED"] = "1"
        backfill = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "reproduce",
                "--tier", "smoke", "--only", "headline",
                "--out", str(tmp_path), "--json",
            ],
            capture_output=True, text=True, cwd=REPO_ROOT, env=env,
        )
        assert backfill.returncode == 0, backfill.stdout + backfill.stderr
        assert json.loads(backfill.stdout)["completed"] == ["headline"]
        manifest = json.loads((tmp_path / "smoke" / "manifest.json").read_text())
        assert sorted(manifest["experiments"]) == sorted(
            SUBSET.split(",") + ["headline"]
        )
