"""Sharded vs serial byte-identity for the clustered overlay.

The tentpole contract: a ``bullet-clustered`` run with interiors stepped in
forked shard workers must export *byte-identical* ``series.csv`` and
``summary.json`` to the same run stepped serially — under steady state and
under churn, and regardless of ``PYTHONHASHSEED``.  These tests drive the
real CLI in subprocesses (fresh interpreters, fresh hash seeds), exactly
like the CI determinism matrix does.
"""

import filecmp
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

STEADY = (
    "--system", "bullet-clustered", "--nodes", "36", "--cluster-size", "8",
    "--duration", "60", "--seed", "3",
)
CHURN = STEADY + ("--churn", "5",)


def _run(out_dir: Path, hashseed: int, shard_workers: int, scenario_args) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONHASHSEED"] = str(hashseed)
    # Relative --csv with per-run cwd, like the CI determinism matrix: the
    # summary echoes the csv path, which must not differ between runs.
    with open(out_dir / "summary.json", "w") as summary:
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "run",
                *scenario_args,
                "--shard-workers", str(shard_workers),
                "--csv", "series.csv",
                "--json",
            ],
            stdout=summary,
            stderr=subprocess.PIPE,
            text=True,
            cwd=out_dir,
            env=env,
        )
    assert completed.returncode == 0, completed.stderr


@pytest.mark.parametrize("scenario_args", [STEADY, CHURN], ids=["steady", "churn"])
def test_sharded_matches_serial_across_hash_seeds(tmp_path, scenario_args):
    _run(tmp_path / "serial", hashseed=1, shard_workers=1, scenario_args=scenario_args)
    _run(tmp_path / "shard1", hashseed=1, shard_workers=4, scenario_args=scenario_args)
    _run(tmp_path / "shard2", hashseed=2, shard_workers=4, scenario_args=scenario_args)
    for run in ("shard1", "shard2"):
        for name in ("series.csv", "summary.json"):
            assert filecmp.cmp(
                tmp_path / "serial" / name, tmp_path / run / name, shallow=False
            ), f"{run}/{name} differs from the serial export"
