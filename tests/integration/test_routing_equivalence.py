"""Export equivalence: routing engine on vs off, byte for byte.

The CI determinism matrix runs the full-size versions of these scenarios
through the CLI and ``cmp``s the export files; this reduced-scale guard
keeps the same property in the tier-1 suite — the amortized routing plane
must be *observationally invisible*: identical routes, identical loss
draws, identical series, across steady state, flash-crowd joins and
churn-heavy dissemination, under more than one seed.
"""

import filecmp

import pytest

from repro.experiments.export import write_result_csv
from repro.experiments.harness import ExperimentConfig, run_experiment


def run_pair(tmp_path, label: str, **overrides):
    results = {}
    for mode in (True, False):
        config = ExperimentConfig(routing_engine=mode, **overrides)
        results[mode] = run_experiment(config)
    engine_csv = tmp_path / f"{label}-engine.csv"
    legacy_csv = tmp_path / f"{label}-legacy.csv"
    write_result_csv(engine_csv, results[True])
    write_result_csv(legacy_csv, results[False])
    assert filecmp.cmp(engine_csv, legacy_csv, shallow=False)
    assert results[True].duplicate_ratio == results[False].duplicate_ratio
    assert results[True].control_overhead_kbps == results[False].control_overhead_kbps
    assert results[True].bandwidth_cdf_final == results[False].bandwidth_cdf_final
    assert results[True].per_node_bandwidth_final == results[False].per_node_bandwidth_final


@pytest.mark.parametrize("seed", [3, 11])
class TestRoutingModeEquivalence:
    def test_steady_state_exports_match(self, tmp_path, seed):
        run_pair(
            tmp_path,
            f"steady-{seed}",
            system="bullet",
            n_overlay=16,
            duration_s=40.0,
            seed=seed,
        )

    def test_flash_crowd_join_exports_match(self, tmp_path, seed):
        run_pair(
            tmp_path,
            f"join-{seed}",
            system="bullet",
            n_overlay=12,
            churn_joins=10,
            join_start_s=8.0,
            join_duration_s=10.0,
            duration_s=40.0,
            seed=seed,
        )

    def test_churn_heavy_exports_match(self, tmp_path, seed):
        run_pair(
            tmp_path,
            f"churn-{seed}",
            system="bullet",
            n_overlay=16,
            churn_failures=4,
            churn_start_s=10.0,
            duration_s=40.0,
            seed=seed,
        )


class TestLossyScenarioEquivalence:
    def test_lossy_exports_match(self, tmp_path):
        """The Section 4.5 loss model rides the split attribute cache."""
        run_pair(
            tmp_path,
            "lossy",
            system="bullet",
            n_overlay=14,
            lossy=True,
            duration_s=40.0,
            seed=7,
        )
