"""Byte-level determinism guards for the incremental allocation engine.

Two properties back the CI ``determinism`` job:

1. the same seeded scenario run twice exports byte-identical metrics (no
   dict/set-iteration drift inside the incremental solver);
2. on the existing seed scenarios — where TFRC re-caps every data flow every
   step — the incremental engine's exports are byte-identical to the
   from-scratch solve, because a fully dirty region is exactly the original
   global solver call.
"""

import filecmp

import pytest

from repro.experiments.export import write_result_csv
from repro.experiments.harness import ExperimentConfig, run_experiment


def _config(system: str, incremental: bool = True) -> ExperimentConfig:
    return ExperimentConfig(
        system=system,
        n_overlay=16,
        duration_s=40.0,
        seed=5,
        incremental_allocation=incremental,
    )


@pytest.mark.parametrize("system", ["bullet", "stream"])
def test_same_seed_exports_identically(tmp_path, system):
    paths = []
    for index in range(2):
        result = run_experiment(_config(system))
        path = tmp_path / f"run{index}.csv"
        write_result_csv(path, result)
        paths.append(path)
    assert filecmp.cmp(*paths, shallow=False)


@pytest.mark.parametrize("system", ["bullet", "stream"])
def test_incremental_matches_from_scratch_byte_for_byte(tmp_path, system):
    incremental = run_experiment(_config(system, incremental=True))
    from_scratch = run_experiment(_config(system, incremental=False))
    inc_path = tmp_path / "incremental.csv"
    ref_path = tmp_path / "from_scratch.csv"
    write_result_csv(inc_path, incremental)
    write_result_csv(ref_path, from_scratch)
    assert filecmp.cmp(inc_path, ref_path, shallow=False)
    assert incremental.average_useful_kbps == from_scratch.average_useful_kbps
    assert incremental.bandwidth_cdf_final == from_scratch.bandwidth_cdf_final
