"""End-to-end qualitative checks at reduced scale.

These are the cross-module invariants the paper's evaluation rests on; each
runs a short simulation (tens of seconds, a dozen nodes) so the whole suite
stays fast.  The full-scale reproductions live in ``benchmarks/``.
"""

import pytest

from repro.core.config import BulletConfig
from repro.experiments.harness import ExperimentConfig, run_experiment
from repro.topology.links import BandwidthClass

SCALE = dict(n_overlay=20, duration_s=100.0, seed=7, bandwidth_class=BandwidthClass.LOW)


@pytest.fixture(scope="module")
def bullet_result():
    return run_experiment(ExperimentConfig(system="bullet", tree_kind="random", **SCALE))


@pytest.fixture(scope="module")
def random_tree_result():
    return run_experiment(ExperimentConfig(system="stream", tree_kind="random", **SCALE))


class TestBulletVersusTree:
    def test_bullet_beats_streaming_over_the_same_random_tree(
        self, bullet_result, random_tree_result
    ):
        assert bullet_result.average_useful_kbps > random_tree_result.average_useful_kbps

    def test_bullet_receives_substantial_data_from_peers(self, bullet_result):
        from repro.experiments.metrics import steady_state_average

        from_parent = steady_state_average(bullet_result.from_parent_series)
        assert bullet_result.average_useful_kbps > from_parent

    def test_duplicates_bounded(self, bullet_result):
        assert bullet_result.duplicate_ratio < 0.25

    def test_control_overhead_modest(self, bullet_result):
        # The paper reports ~30 Kbps per node; allow generous slack at small scale.
        assert bullet_result.control_overhead_kbps < 90.0

    def test_raw_close_to_useful(self, bullet_result):
        """Bullet wastes little bandwidth: raw is only slightly above useful."""
        from repro.experiments.metrics import steady_state_average

        raw = steady_state_average(bullet_result.raw_series)
        useful = bullet_result.average_useful_kbps
        assert raw <= useful * 1.4


class TestFailureResilience:
    def test_bullet_keeps_most_bandwidth_through_worst_case_failure(self):
        config = ExperimentConfig(
            system="bullet",
            tree_kind="random",
            failure_at_s=60.0,
            duration_s=120.0,
            n_overlay=20,
            seed=9,
            bandwidth_class=BandwidthClass.MEDIUM,
            ransub_failure_detection=True,
        )
        result = run_experiment(config)
        before = [v for t, v in result.useful_series if 30.0 <= t <= 60.0]
        after = [v for t, v in result.useful_series if t > 75.0]
        assert before and after
        mean_before = sum(before) / len(before)
        mean_after = sum(after) / len(after)
        assert mean_after > 0.5 * mean_before

    def test_tree_streaming_loses_subtree_on_failure(self):
        config = ExperimentConfig(
            system="stream",
            tree_kind="random",
            failure_at_s=50.0,
            duration_s=100.0,
            n_overlay=20,
            seed=9,
            bandwidth_class=BandwidthClass.MEDIUM,
        )
        result = run_experiment(config)
        before = [v for t, v in result.useful_series if 25.0 <= t <= 50.0]
        after = [v for t, v in result.useful_series if t > 60.0]
        mean_before = sum(before) / len(before)
        mean_after = sum(after) / len(after)
        # The failed subtree stops receiving entirely, pulling the average down.
        assert mean_after < mean_before


class TestAblation:
    def test_disjoint_strategy_does_not_hurt(self):
        scale = dict(n_overlay=16, duration_s=80.0, seed=11, bandwidth_class=BandwidthClass.LOW)
        disjoint = run_experiment(
            ExperimentConfig(system="bullet", bullet=BulletConfig(seed=11), **scale)
        )
        nondisjoint = run_experiment(
            ExperimentConfig(
                system="bullet", bullet=BulletConfig(seed=11, disjoint_send=False), **scale
            )
        )
        # The disjoint strategy should never be substantially worse, and the
        # non-disjoint variant should show its cost at constrained bandwidth.
        assert disjoint.average_useful_kbps >= 0.8 * nondisjoint.average_useful_kbps
