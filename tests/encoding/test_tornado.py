"""Tests for Tornado-style erasure codes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.encoding.tornado import TornadoCodec
from repro.util.rng import SeededRng


def make_blocks(k, size=32, seed=1):
    rng = SeededRng(seed)
    return [bytes(rng.randint(0, 255) for _ in range(size)) for _ in range(k)]


class TestTornadoCodec:
    def test_stretch_factor_controls_packet_count(self):
        codec = TornadoCodec(stretch_factor=1.5, seed=1)
        packets = codec.encode(make_blocks(20))
        assert len(packets) == 30

    def test_systematic_prefix(self):
        blocks = make_blocks(10)
        packets = TornadoCodec(seed=1).encode(blocks)
        for i in range(10):
            assert packets[i].payload == blocks[i]
            assert packets[i].source_indices == (i,)

    def test_decode_with_all_packets(self):
        blocks = make_blocks(15)
        codec = TornadoCodec(stretch_factor=1.6, seed=2)
        packets = codec.encode(blocks)
        assert codec.decode(packets, 15) == blocks

    def test_decode_recovers_from_erasures(self):
        blocks = make_blocks(20)
        codec = TornadoCodec(stretch_factor=1.8, degree=3, seed=3)
        packets = codec.encode(blocks)
        # Drop a handful of systematic packets; redundancy must recover them.
        rng = SeededRng(9)
        kept = [p for p in packets if p.index not in {2, 5, 11}]
        decoded = codec.decode(kept, 20)
        assert decoded == blocks

    def test_decode_fails_with_too_few_packets(self):
        blocks = make_blocks(20)
        codec = TornadoCodec(stretch_factor=1.5, seed=4)
        packets = codec.encode(blocks)
        assert codec.decode(packets[:10], 20) is None

    def test_reception_overhead(self):
        codec = TornadoCodec()
        assert codec.reception_overhead(21, 20) == pytest.approx(0.05)
        with pytest.raises(ValueError):
            codec.reception_overhead(10, 0)

    def test_empty_input(self):
        codec = TornadoCodec()
        assert codec.encode([]) == []

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TornadoCodec(stretch_factor=0.5)
        with pytest.raises(ValueError):
            TornadoCodec(degree=1)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=10**6))
    def test_round_trip_property(self, k, seed):
        """Encoding then decoding the full packet set recovers the source."""
        blocks = make_blocks(k, seed=seed % 1000)
        codec = TornadoCodec(stretch_factor=1.5, seed=seed)
        packets = codec.encode(blocks)
        assert codec.decode(packets, k) == blocks

    def test_digital_fountain_behaviour(self):
        """Moderate random erasures of encoded packets are usually recoverable."""
        blocks = make_blocks(30)
        codec = TornadoCodec(stretch_factor=2.0, degree=4, seed=5)
        packets = codec.encode(blocks)
        rng = SeededRng(77)
        successes = 0
        for trial in range(10):
            kept = [p for p in packets if rng.random() > 0.15]
            if codec.decode(kept, 30) == blocks:
                successes += 1
        assert successes >= 7
