"""Tests for the MDC layered-media model."""

import pytest

from repro.encoding.mdc import MdcCodec


class TestMdcCodec:
    def test_descriptions_partition_blocks(self):
        codec = MdcCodec(num_descriptions=4)
        blocks = [bytes([i]) * 4 for i in range(10)]
        descriptions = codec.encode(blocks)
        assert len(descriptions) == 4
        total = sum(len(d.packets) for d in descriptions)
        assert total == 10
        indices = sorted(p.source_indices[0] for d in descriptions for p in d.packets)
        assert indices == list(range(10))

    def test_full_reception_full_fidelity(self):
        codec = MdcCodec(num_descriptions=3)
        blocks = [bytes([i]) * 2 for i in range(9)]
        descriptions = codec.encode(blocks)
        decoded, fidelity = codec.decode(descriptions, 9)
        assert fidelity == 1.0
        assert decoded == blocks

    def test_partial_reception_partial_fidelity(self):
        codec = MdcCodec(num_descriptions=4)
        blocks = [bytes([i]) * 2 for i in range(16)]
        descriptions = codec.encode(blocks)
        decoded, fidelity = codec.decode(descriptions[:2], 16)
        assert fidelity == pytest.approx(0.5)
        assert sum(1 for block in decoded if block is not None) == 8

    def test_any_single_description_usable(self):
        codec = MdcCodec(num_descriptions=4)
        blocks = [bytes([i]) for i in range(8)]
        descriptions = codec.encode(blocks)
        for description in descriptions:
            assert codec.usable([description])
            _, fidelity = codec.decode([description], 8)
            assert fidelity > 0.0

    def test_more_descriptions_more_fidelity(self):
        codec = MdcCodec(num_descriptions=4)
        blocks = [bytes([i]) for i in range(20)]
        descriptions = codec.encode(blocks)
        fidelities = [codec.decode(descriptions[:n], 20)[1] for n in range(1, 5)]
        assert fidelities == sorted(fidelities)
        assert fidelities[-1] == 1.0

    def test_rejects_zero_descriptions(self):
        with pytest.raises(ValueError):
            MdcCodec(num_descriptions=0)

    def test_empty_subset_not_usable(self):
        codec = MdcCodec(num_descriptions=2)
        assert not codec.usable([])
