"""Tests for LT (Luby Transform) rateless codes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.encoding.lt import LtCodec, robust_soliton_distribution
from repro.util.rng import SeededRng


def make_blocks(k, size=24, seed=1):
    rng = SeededRng(seed)
    return [bytes(rng.randint(0, 255) for _ in range(size)) for _ in range(k)]


class TestRobustSoliton:
    def test_sums_to_one(self):
        for k in (1, 2, 10, 100):
            assert sum(robust_soliton_distribution(k)) == pytest.approx(1.0)

    def test_degree_one_present(self):
        dist = robust_soliton_distribution(50)
        assert dist[0] > 0.0

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            robust_soliton_distribution(0)

    def test_k_equals_one(self):
        assert robust_soliton_distribution(1) == [1.0]


class TestLtCodec:
    def test_rateless_stream_is_unbounded(self):
        codec = LtCodec(seed=1)
        blocks = make_blocks(10)
        stream = codec.packet_stream(blocks)
        packets = [next(stream) for _ in range(100)]
        assert len(packets) == 100
        assert packets[99].index == 99

    def test_encode_emits_overhead_packets(self):
        codec = LtCodec(overhead=0.5, seed=2)
        packets = codec.encode(make_blocks(20))
        assert len(packets) == 30

    def test_round_trip_with_extra_packets(self):
        blocks = make_blocks(25)
        codec = LtCodec(seed=3)
        stream = codec.packet_stream(blocks)
        packets = [next(stream) for _ in range(70)]
        assert codec.decode(packets, 25) == blocks

    def test_decode_insufficient_returns_none(self):
        blocks = make_blocks(30)
        codec = LtCodec(seed=4)
        stream = codec.packet_stream(blocks)
        packets = [next(stream) for _ in range(10)]
        assert codec.decode(packets, 30) is None

    def test_empty_input(self):
        assert LtCodec().encode([]) == []

    def test_rejects_negative_overhead(self):
        with pytest.raises(ValueError):
            LtCodec(overhead=-0.1)

    def test_low_reception_overhead_typical(self):
        """LT codes typically decode after a modest overhead beyond k."""
        blocks = make_blocks(40)
        codec = LtCodec(seed=5)
        stream = codec.packet_stream(blocks)
        received = []
        needed = None
        for count in range(1, 140):
            received.append(next(stream))
            if count >= 40 and codec.decode(received, 40) is not None:
                needed = count
                break
        assert needed is not None
        assert needed <= 120  # within 3x; usually much lower

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=20))
    def test_decode_property(self, k):
        blocks = make_blocks(k, seed=k)
        codec = LtCodec(seed=k)
        stream = codec.packet_stream(blocks)
        packets = [next(stream) for _ in range(4 * k + 10)]
        assert codec.decode(packets, k) == blocks
