"""Tests for the null (identity) encoding."""

import pytest

from repro.encoding.base import join_blocks, split_into_blocks
from repro.encoding.null import NullCodec


class TestSplitJoin:
    def test_round_trip(self):
        data = bytes(range(256)) * 5
        blocks = split_into_blocks(data, 100)
        assert join_blocks(blocks, len(data)) == data

    def test_last_block_padded(self):
        blocks = split_into_blocks(b"abcde", 4)
        assert len(blocks) == 2
        assert len(blocks[1]) == 4

    def test_empty_data_gives_one_block(self):
        blocks = split_into_blocks(b"", 8)
        assert blocks == [bytes(8)]

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            split_into_blocks(b"abc", 0)


class TestNullCodec:
    def test_encode_is_identity(self):
        codec = NullCodec()
        blocks = [b"aaaa", b"bbbb", b"cccc"]
        packets = codec.encode(blocks)
        assert [p.payload for p in packets] == blocks
        assert [p.source_indices for p in packets] == [(0,), (1,), (2,)]

    def test_decode_requires_all_packets(self):
        codec = NullCodec()
        blocks = [b"aaaa", b"bbbb", b"cccc"]
        packets = codec.encode(blocks)
        assert codec.decode(packets[:2], 3) is None
        assert codec.decode(packets, 3) == blocks

    def test_decode_order_independent(self):
        codec = NullCodec()
        blocks = [b"aa", b"bb", b"cc", b"dd"]
        packets = codec.encode(blocks)
        assert codec.decode(list(reversed(packets)), 4) == blocks

    def test_minimum_packets(self):
        assert NullCodec().minimum_packets(17) == 17

    def test_rejects_multi_source_packets(self):
        from repro.encoding.base import EncodedPacket

        codec = NullCodec()
        bad = EncodedPacket(index=0, payload=b"xx", source_indices=(0, 1))
        with pytest.raises(ValueError):
            codec.decode([bad], 2)
