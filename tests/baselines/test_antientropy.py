"""Tests for the streaming-with-anti-entropy baseline."""

import pytest

from repro.baselines.antientropy import AntiEntropyStreaming
from repro.baselines.streaming import TreeStreaming
from repro.experiments.workloads import build_workload
from repro.network.simulator import NetworkSimulator
from repro.topology.links import BandwidthClass


def build(n=12, seed=6, bandwidth_class=BandwidthClass.LOW, epoch=10.0):
    workload = build_workload(
        n_overlay=n, tree_kind="random", seed=seed, bandwidth_class=bandwidth_class
    )
    simulator = NetworkSimulator(workload.topology, dt=1.0, seed=seed)
    system = AntiEntropyStreaming(
        simulator,
        workload.tree,
        stream_rate_kbps=600.0,
        recovery_peers=3,
        anti_entropy_epoch_s=epoch,
        seed=seed,
    )
    return workload, simulator, system


class TestAntiEntropyStreaming:
    def test_rejects_bad_peer_count(self):
        workload, simulator, _ = build()
        with pytest.raises(ValueError):
            AntiEntropyStreaming(simulator, workload.tree, recovery_peers=0)

    def test_recovery_flows_created_after_an_epoch(self):
        _, _, system = build()
        system.run(30)
        assert len(system.recovery_flows) > 0

    def test_all_receivers_get_data(self):
        _, simulator, system = build()
        system.run(40)
        for node in system.receivers():
            assert simulator.stats.node_counters(node).useful_packets > 0

    def test_anti_entropy_recovers_more_than_plain_streaming(self):
        """On a constrained topology anti-entropy must beat plain streaming."""
        workload, plain_sim, _ = build(seed=8)
        plain = TreeStreaming(plain_sim, workload.tree, stream_rate_kbps=600.0)
        plain.run(80)
        _, ae_sim, ae = build(seed=8)
        ae.run(80)
        plain_total = sum(
            plain_sim.stats.node_counters(n).useful_packets for n in plain.receivers()
        )
        ae_total = sum(ae_sim.stats.node_counters(n).useful_packets for n in ae.receivers())
        assert ae_total >= plain_total

    def test_anti_entropy_charges_control_overhead(self):
        _, simulator, system = build()
        system.run(40)
        overhead = simulator.stats.control_overhead_kbps(system.receivers(), simulator.time)
        assert overhead > 0

    def test_recovery_produces_some_duplicates(self):
        """Digest staleness means some recovered packets arrive twice."""
        _, simulator, system = build(seed=10)
        system.run(80)
        assert simulator.stats.duplicate_ratio(system.receivers()) >= 0.0
