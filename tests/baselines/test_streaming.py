"""Tests for the tree streaming baseline."""

import pytest

from repro.baselines.streaming import TreeStreaming
from repro.experiments.workloads import build_workload
from repro.network.simulator import NetworkSimulator


def build(n=12, seed=3, transport="tfrc", tree_kind="random"):
    workload = build_workload(n_overlay=n, tree_kind=tree_kind, seed=seed)
    simulator = NetworkSimulator(workload.topology, dt=1.0, seed=seed)
    streaming = TreeStreaming(simulator, workload.tree, stream_rate_kbps=600.0, transport=transport)
    return workload, simulator, streaming


class TestTreeStreaming:
    def test_rejects_unknown_transport(self):
        workload, simulator, _ = build()
        with pytest.raises(ValueError):
            TreeStreaming(simulator, workload.tree, transport="carrier-pigeon")

    def test_rejects_bad_rate(self):
        workload, simulator, _ = build()
        with pytest.raises(ValueError):
            TreeStreaming(simulator, workload.tree, stream_rate_kbps=0.0)

    def test_all_receivers_get_data(self):
        _, simulator, streaming = build()
        streaming.run(40)
        for node in streaming.receivers():
            assert simulator.stats.node_counters(node).useful_packets > 0

    def test_no_duplicates_in_plain_streaming(self):
        _, simulator, streaming = build()
        streaming.run(40)
        assert simulator.stats.duplicate_ratio(streaming.receivers()) == 0.0

    def test_bandwidth_monotonically_non_increasing_down_the_tree(self):
        """Deeper nodes never receive more than their ancestors (tree property)."""
        workload, simulator, streaming = build(n=16, seed=7)
        streaming.run(60)
        tree = workload.tree
        for node in streaming.receivers():
            parent = tree.parent(node)
            if parent == tree.root or parent is None:
                continue
            node_useful = simulator.stats.node_counters(node).useful_packets
            parent_useful = simulator.stats.node_counters(parent).useful_packets
            assert node_useful <= parent_useful + 60  # small slack for timing

    def test_tcp_transport_queues_instead_of_dropping(self):
        _, sim_tfrc, tfrc_streaming = build(transport="tfrc", seed=9)
        tfrc_streaming.run(40)
        _, sim_tcp, tcp_streaming = build(transport="tcp", seed=9)
        tcp_streaming.run(40)
        # Both deliver data; the TCP mode must not deliver less than half of
        # TFRC's (queuing should not lose data outright).
        tfrc_total = sum(
            sim_tfrc.stats.node_counters(n).useful_packets for n in tfrc_streaming.receivers()
        )
        tcp_total = sum(
            sim_tcp.stats.node_counters(n).useful_packets for n in tcp_streaming.receivers()
        )
        assert tcp_total > 0.5 * tfrc_total

    def test_failure_cuts_off_subtree(self):
        workload, simulator, streaming = build(n=16, seed=5)
        streaming.run(30)
        victim = workload.tree.children(workload.tree.root)[0]
        descendants = workload.tree.descendants(victim)
        before = {
            node: simulator.stats.node_counters(node).useful_packets for node in descendants
        }
        streaming.fail_node(victim)
        streaming.run(30)
        for node in descendants:
            after = simulator.stats.node_counters(node).useful_packets
            assert after == before[node]

    def test_failing_root_rejected(self):
        workload, _, streaming = build()
        with pytest.raises(ValueError):
            streaming.fail_node(workload.tree.root)

    def test_bottleneck_tree_outperforms_random_tree(self):
        """The Figure 6 ordering at small scale."""
        _, sim_random, random_streaming = build(n=16, seed=11, tree_kind="random")
        random_streaming.run(60)
        _, sim_bottleneck, bottleneck_streaming = build(n=16, seed=11, tree_kind="bottleneck")
        bottleneck_streaming.run(60)
        random_total = sum(
            sim_random.stats.node_counters(n).useful_packets
            for n in random_streaming.receivers()
        )
        bottleneck_total = sum(
            sim_bottleneck.stats.node_counters(n).useful_packets
            for n in bottleneck_streaming.receivers()
        )
        assert bottleneck_total >= random_total
