"""Tests for the push-gossip baseline."""

import pytest

from repro.baselines.gossip import PushGossip
from repro.experiments.workloads import build_workload
from repro.network.simulator import NetworkSimulator


def build(n=12, seed=4, fanout=4):
    workload = build_workload(n_overlay=n, tree_kind="random", seed=seed)
    simulator = NetworkSimulator(workload.topology, dt=1.0, seed=seed)
    gossip = PushGossip(
        simulator,
        source=workload.source,
        members=workload.participants,
        stream_rate_kbps=600.0,
        fanout=fanout,
        seed=seed,
    )
    return workload, simulator, gossip


class TestPushGossip:
    def test_rejects_non_member_source(self):
        workload, simulator, _ = build()
        with pytest.raises(ValueError):
            PushGossip(simulator, source=-1, members=workload.participants)

    def test_rejects_bad_fanout(self):
        workload, simulator, _ = build()
        with pytest.raises(ValueError):
            PushGossip(simulator, source=workload.source, members=workload.participants, fanout=0)

    def test_fanout_clamped_to_membership(self):
        workload, simulator, _ = build()
        gossip = PushGossip(
            simulator, source=workload.source, members=workload.participants[:4], fanout=50
        )
        assert gossip.fanout == 3

    def test_data_spreads_without_a_tree(self):
        _, simulator, gossip = build()
        gossip.run(50)
        reached = sum(
            1
            for node in gossip.receivers()
            if simulator.stats.node_counters(node).useful_packets > 0
        )
        assert reached >= len(gossip.receivers()) * 0.8

    def test_gossip_generates_duplicates(self):
        """Epidemic push is wasteful: raw exceeds useful noticeably."""
        _, simulator, gossip = build()
        gossip.run(60)
        ratio = simulator.stats.duplicate_ratio(gossip.receivers())
        assert ratio > 0.05

    def test_targets_reselected_over_time(self):
        _, _, gossip = build()
        before = {node: list(targets) for node, targets in gossip._targets.items()}
        gossip.run(30)
        changed = sum(1 for node, targets in gossip._targets.items() if before[node] != targets)
        assert changed > 0

    def test_no_from_parent_traffic(self):
        _, simulator, gossip = build()
        gossip.run(30)
        assert all(
            simulator.stats.node_counters(node).from_parent_packets == 0
            for node in gossip.receivers()
        )
