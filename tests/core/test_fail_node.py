"""Thorough coverage of node failure semantics (Section 4.6).

A failed node must disappear from the data plane (tree and mesh flows torn
down), from the control plane (its messages are dropped, it is never chosen
as a peer candidate again) and from RanSub — which either stalls entirely
(failure detection off) or times the dead subtree out and routes around it
(failure detection on).
"""

from repro.core.config import BulletConfig
from repro.core.mesh import BulletMesh
from repro.experiments.workloads import build_workload
from repro.failure.injector import worst_case_victim
from repro.network.simulator import NetworkSimulator


def build_mesh(n=14, seed=3, duration=0, **config_kwargs):
    workload = build_workload(n_overlay=n, tree_kind="random", seed=seed)
    simulator = NetworkSimulator(workload.topology, dt=1.0, seed=seed)
    config = BulletConfig(stream_rate_kbps=600.0, seed=seed, **config_kwargs)
    mesh = BulletMesh(simulator, workload.tree, config)
    if duration:
        mesh.run(duration)
    return workload, simulator, mesh


def view_epochs(mesh):
    """Each live node's current RanSub view epoch (-1 when it has none)."""
    return {
        node_id: (node.ransub.view.epoch if node.ransub.view is not None else -1)
        for node_id, node in mesh.nodes.items()
        if not node.failed
    }


class TestFlowTeardown:
    def test_tree_and_mesh_flows_are_torn_down(self):
        workload, _, mesh = build_mesh(duration=45)
        # Pick a victim that actually participates in the mesh if possible.
        victims = [
            node
            for node in mesh.receivers()
            if any(node in key for key in mesh.mesh_flows)
        ]
        victim = victims[0] if victims else workload.tree.children(mesh.root)[0]
        mesh.fail_node(victim)
        assert victim in mesh.failed
        assert mesh.nodes[victim].failed
        assert all(victim not in key for key in mesh.tree_flows)
        assert all(victim not in key for key in mesh.mesh_flows)

    def test_failed_node_is_cut_off_from_the_control_plane(self):
        workload, _, mesh = build_mesh(duration=20)
        victim = workload.tree.children(mesh.root)[0]
        mesh.fail_node(victim)
        channel = mesh.control_channel
        assert channel.is_down(victim)
        assert mesh.nodes[victim].outbox == []
        assert mesh.nodes[victim].pending_requests == {}
        delivered_before = channel.delivered_count
        dropped_before = channel.dropped_count
        mesh.run(15)
        # Control kept flowing among survivors, but messages addressed to
        # the victim (refreshes from its former peers, collects from its
        # children) were dropped.
        assert channel.delivered_count > delivered_before
        assert channel.dropped_count > dropped_before

    def test_survivor_peer_slots_are_garbage_collected(self):
        """A dead sender eventually disappears from its receivers' lists."""
        _, _, mesh = build_mesh(n=16, duration=60)
        senders_of = {
            node_id: set(mesh.nodes[node_id].peers.senders) for node_id in mesh.receivers()
        }
        victims = [n for n in mesh.receivers() if any(n in s for s in senders_of.values())]
        if not victims:  # no peerings at all would make the test vacuous
            raise AssertionError("expected at least one mesh peering by t=60")
        victim = victims[0]
        mesh.fail_node(victim)
        # Two eviction periods (3 epochs each) plus slack.
        mesh.run(60)
        for node_id in mesh.receivers():
            assert victim not in mesh.nodes[node_id].peers.senders
            assert victim not in mesh.nodes[node_id].peers.receivers


class TestCandidateExclusion:
    def test_failed_node_is_never_chosen_as_a_peer_candidate(self):
        workload, _, mesh = build_mesh(n=16, duration=30)
        victim = worst_case_victim(workload.tree)
        mesh.fail_node(victim)
        baseline = {
            node_id: victim in mesh.nodes[node_id].peers.senders
            for node_id in mesh.receivers()
        }
        mesh.run(60)
        for node_id in mesh.receivers():
            node = mesh.nodes[node_id]
            # No *new* peering with the victim ever forms (stale ones are
            # garbage collected, so the count can only shrink).
            if not baseline[node_id]:
                assert victim not in node.peers.senders
            assert victim not in node.pending_requests
            assert victim not in node.peers.receivers
        assert all(victim not in key for key in mesh.mesh_flows)


class TestRanSubFailureModes:
    def test_ransub_stalls_without_failure_detection(self):
        workload, _, mesh = build_mesh(
            n=14, duration=30, ransub_failure_detection=False
        )
        before = view_epochs(mesh)
        assert max(before.values()) > 0  # epochs completed while healthy
        victim = worst_case_victim(workload.tree)
        mesh.fail_node(victim)
        mesh.run(30)
        after = view_epochs(mesh)
        # "RanSub stops functioning": nobody receives a fresh view.
        assert after == {
            node: epoch for node, epoch in before.items() if node != victim
        }

    def test_deep_leaf_failure_does_not_cut_off_its_live_ancestors(self):
        """Timing out a dead *deep* node must only exclude that node.

        Regression test: every node shares the same per-epoch collect
        deadline, so unless timeouts fire deepest-first (with the late
        collects pumped between depth levels) a dead leaf's entire live
        ancestor chain finalizes without each other's collects and is cut
        off from the distribute phase forever.
        """
        workload, _, mesh = build_mesh(n=14, duration=30, ransub_failure_detection=True)
        victim = max(mesh.receivers(), key=workload.tree.depth)
        assert not workload.tree.children(victim)  # deepest node is a leaf
        before = view_epochs(mesh)
        mesh.fail_node(victim)
        mesh.run(40)
        after = view_epochs(mesh)
        # Nothing was below the victim, so every survivor — including its
        # ancestors and their healthy subtrees — keeps receiving fresh views.
        for node_id, epoch in after.items():
            assert epoch > before[node_id], f"node {node_id} frozen at epoch {epoch}"

    def test_ransub_routes_around_the_failed_subtree_with_detection(self):
        workload, _, mesh = build_mesh(n=14, duration=30, ransub_failure_detection=True)
        before = view_epochs(mesh)
        victim = worst_case_victim(workload.tree)
        cut_off = set(workload.tree.subtree(victim))
        mesh.fail_node(victim)
        mesh.run(40)
        after = view_epochs(mesh)
        failure_epoch = max(before.values())
        for node_id, epoch in after.items():
            if node_id in cut_off:
                # Orphaned subtree: its tree path to the root is gone.
                assert epoch == before[node_id]
            else:
                assert epoch > before[node_id]
                # Fresh views produced well after the failure no longer
                # carry the dead node's summary.
                if epoch > failure_epoch + 2:
                    view = mesh.nodes[node_id].ransub.view
                    assert victim not in view.summaries
