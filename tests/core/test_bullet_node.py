"""Tests for per-node Bullet state."""


from repro.core.bullet_node import BulletNode
from repro.core.config import BulletConfig


def make_node(node=1, children=(2, 3), parent=0, is_root=False, **cfg):
    config = BulletConfig(**cfg)
    return BulletNode(node, config, children=list(children), parent=parent, is_root=is_root)


class TestReception:
    def test_useful_then_duplicate(self):
        node = make_node()
        first = node.on_packet(5, from_node=0, via_peer=False)
        second = node.on_packet(5, from_node=9, via_peer=True)
        assert first.useful and not first.duplicate
        assert second.duplicate and not second.useful

    def test_newly_received_drained_once(self):
        node = make_node()
        node.on_packet(1, from_node=0, via_peer=False)
        node.on_packet(2, from_node=0, via_peer=False)
        assert node.take_newly_received() == [1, 2]
        assert node.take_newly_received() == []

    def test_peer_packets_update_sender_records(self):
        node = make_node()
        node.peers.add_sender(9, epoch=1)
        node.on_packet(1, from_node=9, via_peer=True)
        node.on_packet(1, from_node=9, via_peer=True)
        record = node.peers.senders[9]
        assert record.useful_packets == 1
        assert record.duplicate_packets == 1

    def test_parent_packets_do_not_touch_peer_records(self):
        node = make_node()
        node.peers.add_sender(9, epoch=1)
        node.on_packet(1, from_node=0, via_peer=False)
        assert node.peers.senders[9].period_total() == 0


class TestTickets:
    def test_ticket_reflects_working_set(self):
        node = make_node()
        for seq in range(100):
            node.on_packet(seq, from_node=0, via_peer=False)
        before = node.current_ticket()
        assert before.is_empty()
        refreshed = node.refresh_ticket()
        assert not refreshed.is_empty()
        assert node.current_ticket() is refreshed

    def test_member_summary_carries_node_id(self):
        node = make_node(node=42)
        summary = node.member_summary(epoch=3)
        assert summary.node == 42
        assert summary.epoch == 3


class TestRecoveryRequests:
    def test_requests_cover_all_senders(self):
        node = make_node()
        node.peers.add_sender(7, epoch=1)
        node.peers.add_sender(8, epoch=1)
        for seq in range(50):
            node.on_packet(seq, from_node=0, via_peer=False)
        requests = node.build_recovery_requests(period_s=5.0)
        assert set(requests) == {7, 8}

    def test_reported_bandwidth_resets_each_period(self):
        node = make_node()
        node.peers.add_sender(7, epoch=1)
        for seq in range(50):
            node.on_packet(seq, from_node=0, via_peer=False)
        assert node.reported_bandwidth_kbps(period_s=5.0) > 0
        node.build_recovery_requests(period_s=5.0)
        assert node.reported_bandwidth_kbps(period_s=5.0) == 0.0

    def test_rotation_advances_each_build(self):
        node = make_node()
        node.peers.add_sender(7, epoch=1)
        node.peers.add_sender(8, epoch=1)
        for seq in range(20):
            node.on_packet(seq, from_node=0, via_peer=False)
        first = node.build_recovery_requests(period_s=5.0)
        second = node.build_recovery_requests(period_s=5.0)
        assert first[7].mod != second[7].mod

    def test_describe(self):
        node = make_node()
        info = node.describe()
        assert info["children"] == 2.0
        assert info["senders"] == 0.0
