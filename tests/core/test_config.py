"""Tests for BulletConfig defaults and validation."""

import pytest

from repro.core.config import BulletConfig


class TestBulletConfigDefaults:
    def test_paper_defaults(self):
        config = BulletConfig()
        assert config.stream_rate_kbps == 600.0
        assert config.ransub_epoch_s == 5.0
        assert config.ransub_set_size == 10
        assert config.max_senders == 10
        assert config.max_receivers == 10
        assert config.bloom_refresh_s == 5.0
        assert config.duplicate_threshold == 0.5
        assert config.disjoint_send is True

    def test_stream_packets_per_second(self):
        config = BulletConfig(stream_rate_kbps=600.0)
        assert config.stream_packets_per_second == pytest.approx(50.0)

    def test_packets_per_epoch(self):
        config = BulletConfig(stream_rate_kbps=600.0, ransub_epoch_s=5.0)
        assert config.packets_per_epoch == pytest.approx(250.0)

    def test_limiting_factor_step(self):
        config = BulletConfig()
        assert config.limiting_factor_step == pytest.approx(1.0 / 250.0)

    def test_recovery_lookahead_packets(self):
        config = BulletConfig(stream_rate_kbps=600.0, recovery_lookahead_s=5.0)
        assert config.recovery_lookahead_packets == 250


class TestBulletConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"stream_rate_kbps": 0},
            {"packet_kbits": 0},
            {"ransub_epoch_s": 0},
            {"ransub_set_size": 0},
            {"max_senders": 0},
            {"max_receivers": 0},
            {"duplicate_threshold": 0.0},
            {"duplicate_threshold": 1.5},
            {"recovery_span_packets": 0},
            {"working_set_window": 0},
            {"limiting_factor_initial": 0.0},
            {"limiting_factor_initial": 1.5},
            {"limiting_factor_min": 0.0},
            {"eviction_period_epochs": 0},
            {"ticket_entries": 0},
            {"ticket_sample_stride": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            BulletConfig(**kwargs)

    def test_nondisjoint_ablation_flag(self):
        config = BulletConfig(disjoint_send=False)
        assert config.disjoint_send is False
