"""The Bullet control plane: typed messages over the simulated network.

These tests pin the api_redesign invariants: every cross-node interaction
travels through the :class:`~repro.network.control.ControlChannel` (the mesh
never reaches into another node's peer/queue state), the node-level
handlers implement the full peering handshake, and the protocol keeps
working — degraded, not broken — when a fifth of all control messages are
lost.
"""

import inspect

import repro.core.mesh as mesh_module
from repro.core.bullet_node import BulletNode
from repro.core.config import BulletConfig
from repro.core.control_messages import (
    PeeringReply,
    PeeringRequest,
    PeeringTeardown,
    RecoveryRefresh,
)
from repro.core.mesh import BulletMesh
from repro.experiments.workloads import build_workload
from repro.network.simulator import NetworkSimulator


def build_mesh(n=12, seed=2, duration=0, **config_kwargs):
    workload = build_workload(n_overlay=n, tree_kind="random", seed=seed)
    simulator = NetworkSimulator(workload.topology, dt=1.0, seed=seed)
    config = BulletConfig(stream_rate_kbps=600.0, seed=seed, **config_kwargs)
    mesh = BulletMesh(simulator, workload.tree, config)
    if duration:
        mesh.run(duration)
    return workload, simulator, mesh


class FakeServices:
    """Records the orchestration side effects node handlers request."""

    def __init__(self):
        self.opened = []
        self.closed = []
        self.exclusions = set()

    def open_mesh_flow(self, sender, receiver):
        self.opened.append((sender, receiver))

    def close_mesh_flow(self, sender, receiver):
        self.closed.append((sender, receiver))

    def peer_exclusions(self, node):
        return set(self.exclusions)


def make_node(node_id, config=None, children=(), parent=None):
    return BulletNode(
        node=node_id,
        config=config or BulletConfig(seed=1),
        children=children,
        parent=parent,
    )


class TestMeshIsAThinScheduler:
    """The orchestrator must not mutate another node's protocol state."""

    FORBIDDEN = (
        ".peers.add_sender",
        ".peers.add_receiver",
        ".peers.remove_sender",
        ".peers.remove_receiver",
        ".peers.senders.pop",
        ".peers.receivers.pop",
        ".queue.install_request",
        ".queue.offer_new_packet(",  # offered only via the owning node's records
        ".pending_requests[",
    )

    def test_mesh_source_never_touches_remote_peer_state(self):
        source = inspect.getsource(mesh_module)
        # The one legitimate offer site iterates the *local* node's records.
        source = source.replace("record.queue.offer_new_packet(sequence)", "")
        for token in self.FORBIDDEN:
            assert token not in source, (
                f"BulletMesh reaches into node state directly ({token}); all"
                " cross-node interactions must be control messages"
            )

    def test_mesh_routes_control_through_the_channel(self):
        source = inspect.getsource(mesh_module)
        assert "ControlChannel" in source
        assert "record_control" not in source, (
            "control bytes are charged by the channel on delivery, not"
            " hand-accounted by the orchestrator"
        )

    def test_all_message_kinds_travel_the_channel(self):
        _, _, mesh = build_mesh(duration=60)
        delivered = mesh.control_channel.delivered_by_kind
        for kind in (
            "ransub-collect",
            "ransub-distribute",
            "peering-request",
            "peering-reply",
            "recovery-refresh",
        ):
            assert delivered.get(kind, 0) > 0, f"no {kind} messages delivered"

    def test_peerings_are_symmetric_with_flows(self):
        _, _, mesh = build_mesh(duration=60)
        assert mesh.mesh_flows
        for (sender, receiver) in mesh.mesh_flows:
            assert receiver in mesh.nodes[sender].peers.receivers
            assert sender in mesh.nodes[receiver].peers.senders


class TestPeeringHandshake:
    """Node-level send-message / handle-message pairs."""

    def prime(self, node, count=50):
        for sequence in range(count):
            node.on_packet(sequence, from_node=None, via_peer=False)
        node.take_newly_received()

    def test_request_accept_reply_refresh_round_trip(self):
        services = FakeServices()
        receiver = make_node(1)
        sender = make_node(2)
        self.prime(sender)

        receiver.request_peering(2, now=0.0)
        (request,) = receiver.take_outbox()
        assert isinstance(request, PeeringRequest)
        assert 2 in receiver.pending_requests

        sender.handle_control(request, services, now=0.0)
        assert 1 in sender.peers.receivers
        assert services.opened == [(2, 1)]
        # The request's recovery state is installed immediately: the sender
        # can serve before any refresh arrives.
        assert sender.peers.receivers[1].queue.pending_count() > 0

        (reply,) = sender.take_outbox()
        assert isinstance(reply, PeeringReply) and reply.accepted
        receiver.handle_control(reply, services, now=0.0)
        assert 2 in receiver.peers.senders
        assert 2 not in receiver.pending_requests

        # Accepting triggers an immediate row re-deal to all senders.
        refreshes = receiver.take_outbox()
        assert refreshes and all(isinstance(m, RecoveryRefresh) for m in refreshes)
        sender.handle_control(refreshes[0], services, now=0.0)
        assert sender.peers.receivers[1].period_refreshes == 1

    def test_full_sender_rejects_request(self):
        services = FakeServices()
        config = BulletConfig(seed=1, max_receivers=1)
        sender = make_node(2, config=config)
        first = make_node(1, config=config)
        second = make_node(3, config=config)

        first.request_peering(2, now=0.0)
        sender.handle_control(first.take_outbox()[0], services, now=0.0)
        sender.take_outbox()

        second.request_peering(2, now=0.0)
        sender.handle_control(second.take_outbox()[0], services, now=0.0)
        (reply,) = sender.take_outbox()
        assert isinstance(reply, PeeringReply) and not reply.accepted
        second.handle_control(reply, services, now=0.0)
        assert 2 not in second.peers.senders
        assert 2 not in second.pending_requests

    def test_unanswered_request_times_out(self):
        receiver = make_node(1)
        receiver.request_peering(2, now=0.0)
        receiver.take_outbox()
        receiver.poll_control(now=receiver.config.peering_timeout_s - 1.0)
        assert 2 in receiver.pending_requests
        receiver.poll_control(now=receiver.config.peering_timeout_s)
        assert 2 not in receiver.pending_requests

    def test_refresh_from_stranger_is_answered_with_teardown(self):
        """A lost accept leaves the receiver believing in a peering; the
        sender's teardown answer to its refresh heals the half-open state."""
        services = FakeServices()
        receiver = make_node(1)
        stranger = make_node(3)
        receiver.peers.add_sender(3, epoch=1)
        receiver.send_recovery_refreshes()
        (refresh,) = receiver.take_outbox()
        stranger.handle_control(refresh, services, now=0.0)
        (teardown,) = stranger.take_outbox()
        assert isinstance(teardown, PeeringTeardown) and teardown.dropped_by == "sender"
        receiver.handle_control(teardown, services, now=0.0)
        assert 3 not in receiver.peers.senders

    def test_teardown_by_receiver_closes_the_senders_flow(self):
        services = FakeServices()
        sender = make_node(2)
        sender.peers.add_receiver(1, epoch=1)
        teardown = PeeringTeardown(src=1, dst=2, dropped_by="receiver")
        sender.handle_control(teardown, services, now=0.0)
        assert 1 not in sender.peers.receivers
        assert services.closed == [(2, 1)]


class TestLossyControlPlane:
    """Acceptance: peering establishment degrades gracefully at 20% loss."""

    def test_peering_still_forms_under_twenty_percent_control_loss(self):
        _, simulator, mesh = build_mesh(n=14, seed=5, duration=80, control_loss_rate=0.2)
        channel = mesh.control_channel
        # Loss really happened, in volume.
        assert channel.dropped_count > 0.1 * channel.sent_count
        # ... yet peerings formed and mesh flows exist.
        total_senders = sum(len(mesh.nodes[n].peers.senders) for n in mesh.receivers())
        assert total_senders > 0
        assert mesh.mesh_flows
        # ... and every receiver still makes progress.
        for node in mesh.receivers():
            assert simulator.stats.node_counters(node).useful_packets > 0

    def test_lossy_control_plane_is_no_better_than_lossless(self):
        _, lossless_sim, lossless = build_mesh(n=14, seed=5, duration=80)
        _, lossy_sim, lossy = build_mesh(
            n=14, seed=5, duration=80, control_loss_rate=0.35
        )
        peerings = lambda mesh: sum(  # noqa: E731 - tiny local helper
            len(mesh.nodes[n].peers.senders) for n in mesh.receivers()
        )
        assert peerings(lossless) >= peerings(lossy)
        lossless_useful = sum(
            lossless_sim.stats.node_counters(n).useful_packets
            for n in lossless.receivers()
        )
        lossy_useful = sum(
            lossy_sim.stats.node_counters(n).useful_packets for n in lossy.receivers()
        )
        # Graceful: the lossy run still delivers a sizeable fraction.
        assert lossy_useful > 0.5 * lossless_useful
