"""Tests for peer-set management (Sections 3.1 and 3.4)."""

import pytest

from repro.core.config import BulletConfig
from repro.core.peering import PeerManager
from repro.ransub.state import MemberSummary, RanSubView
from repro.reconcile.summary_ticket import SummaryTicket


def view_of(tickets):
    return RanSubView(
        epoch=1,
        summaries={
            node: MemberSummary(node=node, ticket=ticket) for node, ticket in tickets.items()
        },
    )


def ticket(sequences):
    return SummaryTicket.from_working_set(sequences, seed=0)


class TestCapacity:
    def test_sender_and_receiver_limits(self):
        config = BulletConfig(max_senders=2, max_receivers=1)
        peers = PeerManager(1, config)
        peers.add_sender(10, epoch=1)
        peers.add_sender(11, epoch=1)
        assert not peers.has_sender_space()
        with pytest.raises(ValueError):
            peers.add_sender(12, epoch=1)
        peers.add_receiver(20, epoch=1)
        assert not peers.has_receiver_space()
        with pytest.raises(ValueError):
            peers.add_receiver(21, epoch=1)

    def test_add_existing_is_idempotent(self):
        peers = PeerManager(1, BulletConfig(max_senders=1))
        first = peers.add_sender(10, epoch=1)
        again = peers.add_sender(10, epoch=2)
        assert first is again

    def test_remove(self):
        peers = PeerManager(1, BulletConfig())
        peers.add_sender(10, epoch=1)
        peers.add_receiver(20, epoch=1)
        peers.remove_sender(10)
        peers.remove_receiver(20)
        assert peers.sender_ids() == []
        assert peers.receiver_ids() == []


class TestCandidateChoice:
    def test_picks_most_divergent(self):
        config = BulletConfig()
        peers = PeerManager(1, config)
        own = ticket(range(0, 200))
        candidates = view_of({
            5: ticket(range(0, 190)),        # similar content
            6: ticket(range(5000, 5200)),    # divergent content
        })
        assert peers.choose_candidate(candidates, own) == 6

    def test_excludes_self_existing_and_listed(self):
        config = BulletConfig()
        peers = PeerManager(1, config)
        peers.add_sender(6, epoch=1)
        own = ticket(range(100))
        candidates = view_of({1: ticket([1]), 6: ticket([2]), 7: ticket([3])})
        assert peers.choose_candidate(candidates, own, exclude=[7]) is None

    def test_none_when_full(self):
        config = BulletConfig(max_senders=1)
        peers = PeerManager(1, config)
        peers.add_sender(5, epoch=1)
        candidates = view_of({9: ticket([1])})
        assert peers.choose_candidate(candidates, ticket([0])) is None

    def test_none_on_empty_view(self):
        peers = PeerManager(1, BulletConfig())
        assert peers.choose_candidate(view_of({}), ticket([0])) is None


class TestSenderEvaluation:
    def test_wasteful_sender_dropped_first(self):
        config = BulletConfig()
        peers = PeerManager(1, config)
        good = peers.add_sender(10, epoch=1)
        bad = peers.add_sender(11, epoch=1)
        for _ in range(20):
            good.record_packet(duplicate=False)
        for _ in range(20):
            bad.record_packet(duplicate=True)
        assert peers.evaluate_senders() == 11

    def test_worst_useful_sender_dropped_when_enough_peers(self):
        config = BulletConfig(max_senders=4)
        peers = PeerManager(1, config)
        rates = {10: 30, 11: 5, 12: 20}
        for sender, count in rates.items():
            record = peers.add_sender(sender, epoch=1)
            for _ in range(count):
                record.record_packet(duplicate=False)
        assert peers.evaluate_senders() == 11

    def test_no_eviction_with_few_senders(self):
        config = BulletConfig(max_senders=10)
        peers = PeerManager(1, config)
        record = peers.add_sender(10, epoch=1)
        record.record_packet(duplicate=False)
        assert peers.evaluate_senders() is None

    def test_new_senders_with_no_data_are_spared(self):
        config = BulletConfig(max_senders=4)
        peers = PeerManager(1, config)
        active = peers.add_sender(10, epoch=1)
        for _ in range(5):
            active.record_packet(duplicate=False)
        peers.add_sender(11, epoch=2)  # just added, no packets yet
        peers.add_sender(12, epoch=2)
        peers.add_sender(13, epoch=2)
        assert peers.evaluate_senders() == 10 or peers.evaluate_senders() != 11

    def test_reset_periods(self):
        peers = PeerManager(1, BulletConfig())
        record = peers.add_sender(10, epoch=1)
        record.record_packet(duplicate=True)
        peers.reset_periods()
        assert record.period_total() == 0
        assert record.duplicate_packets == 1  # lifetime counter kept


class TestReceiverEvaluation:
    def test_only_when_full(self):
        config = BulletConfig(max_receivers=3)
        peers = PeerManager(1, config)
        peers.add_receiver(20, epoch=1)
        assert peers.evaluate_receivers() is None

    def test_least_benefiting_receiver_dropped(self):
        config = BulletConfig(max_receivers=2)
        peers = PeerManager(1, config)
        a = peers.add_receiver(20, epoch=1)
        b = peers.add_receiver(21, epoch=1)
        a.period_sent = 100
        a.reported_bandwidth_kbps = 500.0
        b.period_sent = 2
        b.reported_bandwidth_kbps = 500.0
        assert peers.evaluate_receivers() == 21
