"""Tests for the disjoint data send routine (Figure 5)."""

import pytest

from repro.core.config import BulletConfig
from repro.core.disjoint import DisjointSender


def accept_all(child, sequence):
    return True


def reject_all(child, sequence):
    return False


class BudgetedTransport:
    """A fake transport with a per-child packet budget."""

    def __init__(self, budgets):
        self.budgets = dict(budgets)
        self.sent = {child: [] for child in budgets}

    def __call__(self, child, sequence):
        if self.budgets.get(child, 0) <= 0:
            return False
        self.budgets[child] -= 1
        self.sent[child].append(sequence)
        return True


class TestSendingFactors:
    def test_equal_by_default(self):
        sender = DisjointSender(BulletConfig(), [1, 2, 3, 4])
        for child in (1, 2, 3, 4):
            assert sender.child_state(child).sending_factor == pytest.approx(0.25)

    def test_proportional_to_descendants(self):
        sender = DisjointSender(BulletConfig(), [1, 2])
        sender.update_sending_factors({1: 30, 2: 10})
        assert sender.child_state(1).sending_factor == pytest.approx(0.75)
        assert sender.child_state(2).sending_factor == pytest.approx(0.25)

    def test_missing_counts_default_to_one(self):
        sender = DisjointSender(BulletConfig(), [1, 2])
        sender.update_sending_factors({1: 3})
        assert sender.child_state(1).sending_factor == pytest.approx(0.75)

    def test_remove_child_renormalizes(self):
        sender = DisjointSender(BulletConfig(), [1, 2])
        sender.remove_child(2)
        assert sender.children == [1]
        assert sender.child_state(1).sending_factor == pytest.approx(1.0)


class TestOwnershipAssignment:
    def test_ample_bandwidth_everyone_gets_everything(self):
        sender = DisjointSender(BulletConfig(), [1, 2, 3])
        for sequence in range(100):
            recipients = sender.send_packet(sequence, accept_all)
            assert sorted(recipients) == [1, 2, 3]

    def test_ownership_follows_descendant_weights(self):
        """With constrained children, owned shares approach sending factors."""
        config = BulletConfig()
        sender = DisjointSender(config, [1, 2])
        sender.update_sending_factors({1: 3, 2: 1})
        transport = BudgetedTransport({1: 60, 2: 60})
        for sequence in range(80):
            sender.send_packet(sequence, transport)
        shares = sender.ownership_shares()
        assert shares[1] > shares[2]
        assert shares[1] == pytest.approx(0.75, abs=0.15)

    def test_ownership_transfer_when_owner_blocked(self):
        """A child with no bandwidth transfers ownership to one that has it."""
        sender = DisjointSender(BulletConfig(), [1, 2])
        sender.update_sending_factors({1: 10, 2: 1})
        transport = BudgetedTransport({1: 0, 2: 50})
        for sequence in range(40):
            sender.send_packet(sequence, transport)
        assert sender.child_state(2).owned_sent == 40
        assert sender.child_state(1).lifetime_sent == 0

    def test_dropped_when_no_child_can_accept(self):
        sender = DisjointSender(BulletConfig(), [1, 2])
        for sequence in range(5):
            assert sender.send_packet(sequence, reject_all) == []
        assert sender.take_dropped() == [0, 1, 2, 3, 4]
        assert sender.take_dropped() == []

    def test_no_children_sends_nothing(self):
        sender = DisjointSender(BulletConfig(), [])
        assert sender.send_packet(0, accept_all) == []

    def test_never_sends_same_packet_twice_to_a_child(self):
        sender = DisjointSender(BulletConfig(), [1])
        sender.send_packet(7, accept_all)
        assert sender.send_packet(7, accept_all) == []


class TestLimitingFactor:
    def test_decreases_on_failed_extra_send(self):
        config = BulletConfig()
        sender = DisjointSender(config, [1, 2])
        # Child 1 has plenty of budget; child 2 has none, so extra sends to it
        # fail and its limiting factor decays.
        transport = BudgetedTransport({1: 1000, 2: 0})
        initial = sender.child_state(2).limiting_factor
        for sequence in range(200):
            sender.send_packet(sequence, transport)
        assert sender.child_state(2).limiting_factor < initial

    def test_increases_back_on_success(self):
        config = BulletConfig()
        sender = DisjointSender(config, [1, 2])
        constrained = BudgetedTransport({1: 1000, 2: 0})
        for sequence in range(200):
            sender.send_packet(sequence, constrained)
        depressed = sender.child_state(2).limiting_factor
        for sequence in range(200, 1200):
            sender.send_packet(sequence, accept_all)
        assert sender.child_state(2).limiting_factor > depressed

    def test_limiting_factor_bounded(self):
        config = BulletConfig()
        sender = DisjointSender(config, [1, 2])
        transport = BudgetedTransport({1: 10_000, 2: 0})
        for sequence in range(2000):
            sender.send_packet(sequence, transport)
        assert sender.child_state(2).limiting_factor >= config.limiting_factor_min


class TestDisjointness:
    def test_constrained_children_receive_mostly_disjoint_data(self):
        """When children bandwidth is tight, their received sets barely overlap."""
        sender = DisjointSender(BulletConfig(), [1, 2])
        transport = BudgetedTransport({1: 100, 2: 100})
        sender.send_batch(list(range(400)), transport)
        received_1 = set(transport.sent[1])
        received_2 = set(transport.sent[2])
        assert len(received_1) == 100
        assert len(received_2) == 100
        overlap = len(received_1 & received_2)
        assert overlap <= 0.2 * min(len(received_1), len(received_2))

    def test_batch_union_uses_all_children_bandwidth(self):
        """Under constraint the union of delivered data ~= the sum of budgets."""
        sender = DisjointSender(BulletConfig(), [1, 2, 3])
        transport = BudgetedTransport({1: 50, 2: 30, 3: 20})
        sender.send_batch(list(range(300)), transport)
        union = set(transport.sent[1]) | set(transport.sent[2]) | set(transport.sent[3])
        assert len(union) == 100

    def test_batch_with_ample_bandwidth_replicates_to_all(self):
        sender = DisjointSender(BulletConfig(), [1, 2])
        transport = BudgetedTransport({1: 1000, 2: 1000})
        recipients = sender.send_batch(list(range(100)), transport)
        assert len(recipients[1]) == 100
        assert len(recipients[2]) == 100

    def test_nondisjoint_mode_sends_same_data_to_all(self):
        """The Figure 10 ablation: every child is offered every packet."""
        config = BulletConfig(disjoint_send=False)
        sender = DisjointSender(config, [1, 2])
        transport = BudgetedTransport({1: 100, 2: 100})
        for sequence in range(100):
            sender.send_packet(sequence, transport)
        assert transport.sent[1] == transport.sent[2]

    def test_epoch_reset_clears_ownership_counters(self):
        sender = DisjointSender(BulletConfig(), [1, 2])
        for sequence in range(50):
            sender.send_packet(sequence, accept_all)
        sender.reset_epoch()
        assert sender.child_state(1).owned_sent == 0
        assert sender.child_state(1).total_sent == 0
        # Lifetime counters survive the reset.
        assert sender.child_state(1).lifetime_sent > 0
