"""Tests for true mid-run membership growth (``add_node``) across systems."""

import pytest

from repro.baselines.antientropy import AntiEntropyStreaming
from repro.baselines.gossip import PushGossip
from repro.baselines.streaming import TreeStreaming
from repro.core.mesh import BulletMesh
from repro.experiments.workloads import build_workload
from repro.network.simulator import NetworkSimulator


def _scenario(n_overlay=12, seed=3):
    workload = build_workload(n_overlay=n_overlay, seed=seed)
    simulator = NetworkSimulator(workload.topology, dt=1.0, seed=seed)
    spare = sorted(
        host for host in workload.topology.client_nodes
        if host not in workload.participants
    )
    assert spare, "scenario needs spare client hosts for joins"
    return workload, simulator, spare


def _drive(simulator, system, steps):
    for _ in range(steps):
        simulator.begin_step()
        system.protocol_phase(simulator.time)
        simulator.end_step()


class TestBulletMeshJoin:
    def test_join_attaches_leaf_and_creates_tree_flow(self):
        workload, simulator, spare = _scenario()
        mesh = BulletMesh(simulator, workload.tree)
        joiner = spare[0]
        parent = mesh.add_node(joiner)
        assert joiner in mesh.tree
        assert mesh.tree.parent(joiner) == parent
        assert (parent, joiner) in mesh.tree_flows
        assert joiner in mesh.receivers()
        assert joiner in mesh.nodes[parent].disjoint.children

    def test_joiner_receives_stream_data(self):
        workload, simulator, spare = _scenario()
        mesh = BulletMesh(simulator, workload.tree)
        _drive(simulator, mesh, 10)
        joiner = spare[0]
        mesh.add_node(joiner)
        _drive(simulator, mesh, 25)
        node = mesh.nodes[joiner]
        assert len(node.working_set) > 0

    def test_joiner_is_primed_at_the_live_stream_position(self):
        workload, simulator, spare = _scenario()
        mesh = BulletMesh(simulator, workload.tree)
        _drive(simulator, mesh, 30)
        joiner = spare[0]
        mesh.add_node(joiner)
        node = mesh.nodes[joiner]
        low, high = node.working_set.recovery_range(
            mesh.config.recovery_span_packets
        )
        # The advertised range must not start at sequence 0: the stream has
        # long moved on, and peers no longer hold expired data.
        assert low > 0

    def test_joiner_enters_ransub_at_next_epoch(self):
        workload, simulator, spare = _scenario()
        mesh = BulletMesh(simulator, workload.tree)
        _drive(simulator, mesh, 7)
        joiner = spare[0]
        mesh.add_node(joiner)
        epochs = int(2 * mesh.config.ransub_epoch_s / simulator.dt) + 2
        _drive(simulator, mesh, epochs)
        node = mesh.nodes[joiner]
        assert node.ransub.epoch > 0
        assert node.ransub.view is not None

    def test_duplicate_join_rejected(self):
        workload, simulator, spare = _scenario()
        mesh = BulletMesh(simulator, workload.tree)
        mesh.add_node(spare[0])
        with pytest.raises(ValueError, match="already"):
            mesh.add_node(spare[0])

    def test_join_under_failed_parent_rejected(self):
        workload, simulator, spare = _scenario()
        mesh = BulletMesh(simulator, workload.tree)
        victim = next(
            node for node in mesh.members() if node != mesh.root
        )
        mesh.fail_node(victim)
        with pytest.raises(ValueError, match="not a live overlay member"):
            mesh.add_node(spare[0], parent=victim)

    def test_joined_node_can_fail(self):
        workload, simulator, spare = _scenario()
        mesh = BulletMesh(simulator, workload.tree)
        joiner = spare[0]
        mesh.add_node(joiner)
        _drive(simulator, mesh, 3)
        mesh.fail_node(joiner)
        assert joiner not in mesh.receivers()
        _drive(simulator, mesh, 3)  # must not crash

    def test_join_parent_choice_is_deterministic_and_balanced(self):
        first = _scenario()
        second = _scenario()
        mesh_a = BulletMesh(first[1], first[0].tree)
        mesh_b = BulletMesh(second[1], second[0].tree)
        parents_a = [mesh_a.add_node(host) for host in first[2][:4]]
        parents_b = [mesh_b.add_node(host) for host in second[2][:4]]
        assert parents_a == parents_b
        limit = max(2, mesh_a.tree.max_fanout())
        assert all(
            len(mesh_a.tree.children(parent)) <= limit for parent in parents_a
        )


class TestBaselineJoins:
    def test_tree_streaming_joiner_receives_data(self):
        workload, simulator, spare = _scenario()
        system = TreeStreaming(simulator, workload.tree)
        _drive(simulator, system, 5)
        joiner = spare[0]
        parent = system.add_node(joiner)
        assert system.tree.parent(joiner) == parent
        assert (parent, joiner) in system.flows
        _drive(simulator, system, 20)
        assert len(system._received[joiner]) > 0
        assert joiner in system.receivers()

    def test_antientropy_joiner_participates_in_digests(self):
        workload, simulator, spare = _scenario()
        system = AntiEntropyStreaming(simulator, workload.tree, seed=3)
        _drive(simulator, system, 5)
        joiner = spare[0]
        system.add_node(joiner)
        _drive(simulator, system, 45)  # spans two anti-entropy epochs
        assert len(system._received[joiner]) > 0

    def test_gossip_joiner_sends_and_receives(self):
        workload, simulator, spare = _scenario()
        system = PushGossip(
            simulator, source=workload.source, members=workload.participants,
            seed=3,
        )
        _drive(simulator, system, 5)
        joiner = spare[0]
        system.add_node(joiner)
        assert joiner in system.members
        assert system._targets[joiner]
        _drive(simulator, system, 25)  # spans a view refresh
        assert len(system._received[joiner]) > 0
        assert joiner in system.receivers()

    def test_gossip_duplicate_join_rejected(self):
        workload, simulator, spare = _scenario()
        system = PushGossip(
            simulator, source=workload.source, members=workload.participants,
            seed=3,
        )
        system.add_node(spare[0])
        with pytest.raises(ValueError, match="already"):
            system.add_node(spare[0])
