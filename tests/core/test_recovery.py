"""Tests for peer recovery requests and sender-side queues (Figure 4)."""


from repro.core.config import BulletConfig
from repro.core.recovery import RecoveryRequest, SenderQueue, build_recovery_requests
from repro.reconcile.working_set import WorkingSet


def working_set_with(sequences):
    ws = WorkingSet()
    ws.update(sequences)
    return ws


class TestBuildRecoveryRequests:
    def test_no_senders_no_requests(self):
        config = BulletConfig()
        assert build_recovery_requests(1, working_set_with(range(10)), [], config) == {}

    def test_rows_partition_senders(self):
        config = BulletConfig()
        ws = working_set_with(range(0, 500, 2))  # every even sequence held
        requests = build_recovery_requests(9, ws, [11, 12, 13], config)
        assert set(requests) == {11, 12, 13}
        mods = sorted(request.mod for request in requests.values())
        assert mods == [0, 1, 2]
        assert all(request.total_senders == 3 for request in requests.values())

    def test_rotation_changes_rows(self):
        config = BulletConfig()
        ws = working_set_with(range(100))
        first = build_recovery_requests(9, ws, [11, 12, 13], config, rotation=0)
        second = build_recovery_requests(9, ws, [11, 12, 13], config, rotation=1)
        assert first[11].mod != second[11].mod

    def test_range_tracks_working_set(self):
        config = BulletConfig(recovery_span_packets=100)
        ws = working_set_with(range(500, 700))
        requests = build_recovery_requests(9, ws, [11], config)
        request = requests[11]
        assert request.high >= 699
        assert request.low == 600

    def test_lookahead_extends_high(self):
        base = BulletConfig(recovery_span_packets=100, recovery_lookahead_s=0.0)
        ahead = BulletConfig(recovery_span_packets=100, recovery_lookahead_s=2.0)
        ws = working_set_with(range(200))
        low_high = build_recovery_requests(9, ws, [11], base)[11].high
        with_lookahead = build_recovery_requests(9, ws, [11], ahead)[11].high
        assert with_lookahead == low_high + ahead.recovery_lookahead_packets

    def test_reported_bandwidth_carried(self):
        config = BulletConfig()
        requests = build_recovery_requests(
            9, working_set_with(range(10)), [11], config, reported_bandwidth_kbps=123.0
        )
        assert requests[11].reported_bandwidth_kbps == 123.0


class TestRecoveryRequestWants:
    def make_request(self, held, low=0, high=99, mod=0, total=2):
        ws = working_set_with(held)
        bloom = ws.bloom_filter(expected_items=256)
        return RecoveryRequest(
            receiver=1, bloom=bloom, low=low, high=high, mod=mod, total_senders=total
        )

    def test_wants_missing_in_row(self):
        request = self.make_request(held=[1, 3, 5], mod=0, total=2)
        assert request.wants(8)          # even row, missing
        assert not request.wants(7)      # wrong row
        assert not request.wants(150)    # out of range

    def test_never_wants_described_packets(self):
        held = list(range(0, 100, 2))
        request = self.make_request(held=held, mod=0, total=2)
        assert all(not request.wants(seq) for seq in held)

    def test_size_includes_bloom(self):
        request = self.make_request(held=range(50))
        assert request.size_bytes() > request.bloom.size_bytes()


class TestSenderQueue:
    def make_request(self, held, mod=0, total=1, low=0, high=199):
        ws = working_set_with(held)
        return RecoveryRequest(
            receiver=7, bloom=ws.bloom_filter(expected_items=256), low=low, high=high,
            mod=mod, total_senders=total,
        )

    def test_install_queues_only_wanted(self):
        queue = SenderQueue(receiver=7)
        request = self.make_request(held=range(0, 100), low=0, high=199)
        queue.install_request(request, holdings=range(0, 200))
        # The receiver holds 0..99, so only 100..199 are queued.
        assert queue.pending_count() == 100
        assert min(queue.pending) == 100

    def test_take_for_send_marks_already_sent(self):
        queue = SenderQueue(receiver=7)
        request = self.make_request(held=[], low=0, high=9)
        queue.install_request(request, holdings=range(10))
        batch = queue.take_for_send(4)
        assert batch == [0, 1, 2, 3]
        assert queue.packets_sent == 4
        # Re-installing the same request does not re-queue sent packets.
        queue.install_request(request, holdings=range(10))
        assert 0 not in queue.pending

    def test_take_with_no_budget(self):
        queue = SenderQueue(receiver=7)
        assert queue.take_for_send(0) == []

    def test_offer_new_packet_respects_filter(self):
        queue = SenderQueue(receiver=7)
        request = self.make_request(held=[], mod=0, total=2, low=0, high=100)
        queue.install_request(request, holdings=[])
        queue.offer_new_packet(4)    # even row: queued
        queue.offer_new_packet(5)    # odd row: not ours
        queue.offer_new_packet(400)  # out of range
        assert queue.pending == [4]

    def test_offer_before_install_is_ignored(self):
        queue = SenderQueue(receiver=7)
        queue.offer_new_packet(3)
        assert queue.pending_count() == 0

    def test_row_partition_prevents_overlap_between_senders(self):
        """Two senders serving the same receiver queue disjoint packets."""
        config = BulletConfig()
        receiver_ws = working_set_with(range(0, 300, 3))  # holds every third
        requests = build_recovery_requests(1, receiver_ws, [10, 20], config)
        holdings = list(range(0, 300))
        queue_a, queue_b = SenderQueue(receiver=1), SenderQueue(receiver=1)
        queue_a.install_request(requests[10], holdings)
        queue_b.install_request(requests[20], holdings)
        assert not (set(queue_a.pending) & set(queue_b.pending))
