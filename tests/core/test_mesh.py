"""Tests for the BulletMesh orchestrator on small workloads."""

import pytest

from repro.core.config import BulletConfig
from repro.core.mesh import BulletMesh
from repro.experiments.workloads import build_workload
from repro.network.simulator import NetworkSimulator


def build_mesh(n=12, seed=2, duration=0, **config_kwargs):
    workload = build_workload(n_overlay=n, tree_kind="random", seed=seed)
    simulator = NetworkSimulator(workload.topology, dt=1.0, seed=seed)
    config = BulletConfig(stream_rate_kbps=600.0, seed=seed, **config_kwargs)
    mesh = BulletMesh(simulator, workload.tree, config)
    if duration:
        mesh.run(duration)
    return workload, simulator, mesh


class TestConstruction:
    def test_one_node_per_member_and_one_flow_per_edge(self):
        workload, simulator, mesh = build_mesh()
        assert set(mesh.nodes) == set(workload.tree.members())
        assert len(mesh.tree_flows) == len(workload.tree.members()) - 1
        assert mesh.mesh_flows == {}

    def test_receivers_exclude_root(self):
        _, _, mesh = build_mesh()
        assert mesh.root not in mesh.receivers()
        assert len(mesh.receivers()) == len(mesh.nodes) - 1

    def test_status_snapshot(self):
        _, _, mesh = build_mesh()
        status = mesh.status()
        assert status.active_nodes == len(mesh.nodes)
        assert status.mesh_flows == 0


class TestProtocolProgress:
    def test_data_flows_to_receivers(self):
        _, simulator, mesh = build_mesh(duration=40)
        received = [
            simulator.stats.node_counters(node).useful_packets for node in mesh.receivers()
        ]
        assert all(count > 0 for count in received)

    def test_peerings_form_after_epochs(self):
        _, _, mesh = build_mesh(duration=40)
        total_senders = sum(len(mesh.nodes[n].peers.senders) for n in mesh.receivers())
        assert total_senders > 0
        assert len(mesh.mesh_flows) > 0

    def test_source_declines_peering_by_default(self):
        _, _, mesh = build_mesh(duration=40)
        assert len(mesh.nodes[mesh.root].peers.receivers) == 0

    def test_source_serves_peers_when_enabled(self):
        _, _, mesh = build_mesh(duration=60, source_serves_peers=True)
        # With the source allowed to serve, someone usually peers with it
        # (it has the most divergent content); at minimum no peering with the
        # source may exist when disabled, so just assert the flag is honoured.
        root_receivers = len(mesh.nodes[mesh.root].peers.receivers)
        assert root_receivers >= 0

    def test_mesh_delivers_data_beyond_parent(self):
        _, simulator, mesh = build_mesh(duration=60)
        total_useful = sum(
            simulator.stats.node_counters(n).useful_packets for n in mesh.receivers()
        )
        total_parent = sum(
            simulator.stats.node_counters(n).from_parent_packets for n in mesh.receivers()
        )
        assert total_useful > total_parent

    def test_control_overhead_is_small(self):
        _, simulator, mesh = build_mesh(duration=60)
        overhead = simulator.stats.control_overhead_kbps(mesh.receivers(), simulator.time)
        assert 0 < overhead < 100.0

    def test_duplicate_ratio_bounded(self):
        _, simulator, mesh = build_mesh(duration=60)
        assert simulator.stats.duplicate_ratio(mesh.receivers()) < 0.3

    def test_no_peering_with_parent(self):
        workload, _, mesh = build_mesh(duration=40)
        for node_id in mesh.receivers():
            parent = workload.tree.parent(node_id)
            assert parent not in mesh.nodes[node_id].peers.senders


class TestFailure:
    def test_fail_node_removes_flows(self):
        workload, simulator, mesh = build_mesh(duration=20)
        victim = workload.tree.children(mesh.root)[0]
        mesh.fail_node(victim)
        assert victim in mesh.failed
        assert all(victim not in key for key in mesh.tree_flows)
        assert all(victim not in key for key in mesh.mesh_flows)

    def test_failing_root_rejected(self):
        _, _, mesh = build_mesh()
        with pytest.raises(ValueError):
            mesh.fail_node(mesh.root)

    def test_unknown_node_rejected(self):
        _, _, mesh = build_mesh()
        with pytest.raises(KeyError):
            mesh.fail_node(10_000)

    def test_survivors_keep_receiving_after_failure(self):
        workload, simulator, mesh = build_mesh(n=14, duration=40)
        victim = workload.tree.children(mesh.root)[0]
        before = {
            node: simulator.stats.node_counters(node).useful_packets
            for node in mesh.receivers()
        }
        mesh.fail_node(victim)
        mesh.run(30)
        survivors = [node for node in mesh.receivers() if node != victim]
        gained = [
            simulator.stats.node_counters(node).useful_packets - before[node]
            for node in survivors
        ]
        assert all(value > 0 for value in gained)
