"""Pipeline mechanics: resume, stability aggregation, failure isolation.

These tests monkeypatch ``select_experiments`` with tiny synthetic catalog
entries so the pipeline's control flow (skipping, digests, manifest
persistence, error handling) is exercised without running simulations; the
integration suite runs the real catalog end to end.
"""

import json

import pytest

from repro.report.catalog import Expectation, ReproExperiment
from repro.report.manifest import MANIFEST_NAME, Manifest, load_timing
from repro.report.runner import (
    ReproducePlan,
    _aggregate_stability,
    expectation_failures,
    run_reproduction,
)


def _entry(experiment_id, runner, number=1, expectations=(), headline=("value",)):
    return ReproExperiment(
        id=experiment_id,
        number=number,
        section="figures",
        title=f"synthetic {experiment_id}",
        paper_ref="Figure 0",
        description="synthetic test entry",
        runner=runner,
        headline=headline,
        expectations=expectations,
    )


def _patch_catalog(monkeypatch, entries):
    monkeypatch.setattr(
        "repro.report.runner.select_experiments", lambda only: list(entries)
    )


class TestPlanValidation:
    def test_unknown_tier(self):
        with pytest.raises(ValueError, match="unknown tier"):
            ReproducePlan(tier="warp")

    def test_stability_floor(self):
        with pytest.raises(ValueError, match="stability"):
            ReproducePlan(stability=0)

    def test_results_dir_defaults_to_tier(self, tmp_path):
        plan = ReproducePlan(tier="smoke", out_dir=tmp_path)
        assert plan.results_dir == tmp_path / "smoke"
        named = ReproducePlan(tier="smoke", out_dir=tmp_path, run_id="run-7")
        assert named.results_dir == tmp_path / "run-7"


class TestPipeline:
    def test_exports_manifest_and_reports(self, tmp_path, monkeypatch):
        _patch_catalog(monkeypatch, [_entry("one", lambda ctx: {"value": 42.0})])
        plan = ReproducePlan(tier="smoke", out_dir=tmp_path)
        run = run_reproduction(plan)
        assert run.completed == ["one"]
        export = json.loads((run.results_dir / "one.json").read_text())
        assert export["metrics"]["value"] == 42.0
        assert export["seeds"] == [1]
        manifest = Manifest.load(run.results_dir)
        assert manifest.is_complete("one")
        assert manifest.experiments["one"].metrics == {"value": 42.0}
        assert run.report_markdown.exists()
        assert run.report_html.exists()
        timing = load_timing(run.results_dir)
        assert "one" in timing["experiments"]

    def test_resume_skips_completed_with_matching_digest(self, tmp_path, monkeypatch):
        calls = []

        def runner(ctx):
            calls.append(ctx.seed)
            return {"value": 1.0}

        _patch_catalog(monkeypatch, [_entry("one", runner)])
        plan = ReproducePlan(tier="smoke", out_dir=tmp_path)
        run_reproduction(plan)
        assert calls == [1]
        second = run_reproduction(plan)
        assert calls == [1]
        assert second.skipped == ["one"]

    def test_tampered_export_reruns(self, tmp_path, monkeypatch):
        calls = []

        def runner(ctx):
            calls.append(ctx.seed)
            return {"value": 1.0}

        _patch_catalog(monkeypatch, [_entry("one", runner)])
        plan = ReproducePlan(tier="smoke", out_dir=tmp_path)
        run = run_reproduction(plan)
        (run.results_dir / "one.json").write_text("{}\n")
        second = run_reproduction(plan)
        assert second.completed == ["one"]
        assert calls == [1, 1]

    def test_no_resume_reruns(self, tmp_path, monkeypatch):
        calls = []
        _patch_catalog(
            monkeypatch, [_entry("one", lambda ctx: calls.append(1) or {"value": 1.0})]
        )
        run_reproduction(ReproducePlan(tier="smoke", out_dir=tmp_path))
        run_reproduction(ReproducePlan(tier="smoke", out_dir=tmp_path, resume=False))
        assert len(calls) == 2

    def test_one_failure_does_not_kill_the_run(self, tmp_path, monkeypatch):
        def boom(ctx):
            raise RuntimeError("synthetic failure")

        _patch_catalog(
            monkeypatch,
            [
                _entry("bad", boom, number=1),
                _entry("good", lambda ctx: {"value": 2.0}, number=2),
            ],
        )
        run = run_reproduction(ReproducePlan(tier="smoke", out_dir=tmp_path))
        assert run.failed == ["bad"]
        assert run.completed == ["good"]
        manifest = Manifest.load(run.results_dir)
        assert manifest.experiments["bad"].error == "RuntimeError: synthetic failure"
        failures = expectation_failures(manifest)
        assert any("bad" in line for line in failures)

    def test_stability_aggregates_across_seeds(self, tmp_path, monkeypatch):
        def runner(ctx):
            return {"value": float(ctx.seed)}

        _patch_catalog(monkeypatch, [_entry("one", runner)])
        plan = ReproducePlan(tier="smoke", out_dir=tmp_path, stability=3)
        run = run_reproduction(plan)
        export = json.loads((run.results_dir / "one.json").read_text())
        assert export["seeds"] == [1, 2, 3]
        stability = export["stability"]["value"]
        assert stability["mean"] == pytest.approx(2.0)
        assert stability["n"] == 3.0
        manifest = Manifest.load(run.results_dir)
        assert manifest.experiments["one"].stability["value"]["mean"] == pytest.approx(2.0)

    def test_expectations_recorded(self, tmp_path, monkeypatch):
        checks = (
            Expectation(name="big enough", kind="ge", left="value", factor=10.0),
            Expectation(name="small enough", kind="le", left="value", factor=1.0),
        )
        _patch_catalog(
            monkeypatch, [_entry("one", lambda ctx: {"value": 5.0}, expectations=checks)]
        )
        run = run_reproduction(ReproducePlan(tier="smoke", out_dir=tmp_path))
        record = Manifest.load(run.results_dir).experiments["one"]
        statuses = {o.name: o.status for o in record.expectations}
        assert statuses == {"big enough": "fail", "small enough": "fail"}
        assert len(expectation_failures(run.manifest)) == 2

    def test_seed_override(self, tmp_path, monkeypatch):
        seeds = []
        _patch_catalog(
            monkeypatch, [_entry("one", lambda ctx: seeds.append(ctx.seed) or {"value": 0.0})]
        )
        run_reproduction(ReproducePlan(tier="smoke", out_dir=tmp_path, seed=9))
        assert seeds == [9]

    def test_manifest_has_no_wall_clock(self, tmp_path, monkeypatch):
        _patch_catalog(monkeypatch, [_entry("one", lambda ctx: {"value": 1.0})])
        run = run_reproduction(ReproducePlan(tier="smoke", out_dir=tmp_path))
        manifest_text = (run.results_dir / MANIFEST_NAME).read_text()
        assert "wall" not in manifest_text
        assert "timing" not in manifest_text


class TestAggregateStability:
    def test_single_sample_has_zero_ci(self):
        table = _aggregate_stability([{"m": 4.0}])
        assert table["m"] == {"mean": 4.0, "std": 0.0, "ci95": 0.0, "n": 1.0}

    def test_multi_sample(self):
        table = _aggregate_stability([{"m": 1.0}, {"m": 3.0}])
        assert table["m"]["mean"] == pytest.approx(2.0)
        assert table["m"]["n"] == 2.0
        assert table["m"]["ci95"] > 0.0
