"""Catalog invariants, expectation evaluation and export shaping."""

import pytest

from repro.experiments.registry import available_systems
from repro.report.catalog import (
    CATALOG,
    EXPERIMENTS,
    SECTIONS,
    TIER_NAMES,
    TIERS,
    Expectation,
    flatten_export,
    experiment_ids,
    get_experiment,
    select_experiments,
)


class TestCatalogShape:
    def test_ids_unique_and_numbers_sequential(self):
        ids = [entry.id for entry in CATALOG]
        assert len(ids) == len(set(ids))
        assert [entry.number for entry in CATALOG] == list(
            range(1, len(CATALOG) + 1)
        )

    def test_every_entry_in_a_known_section(self):
        known = {key for key, _ in SECTIONS}
        assert {entry.section for entry in CATALOG} <= known

    def test_experiments_index_matches(self):
        assert set(EXPERIMENTS) == set(experiment_ids())
        assert experiment_ids() == [entry.id for entry in CATALOG]

    def test_systems_are_registered(self):
        registered = set(available_systems())
        for entry in CATALOG:
            assert set(entry.systems) <= registered, entry.id

    def test_expectation_tiers_are_valid(self):
        for entry in CATALOG:
            for expectation in entry.expectations:
                assert set(expectation.tiers) <= set(TIER_NAMES), entry.id

    def test_tiers(self):
        assert tuple(TIERS) == TIER_NAMES
        assert TIERS["smoke"].n_overlay < TIERS["paper"].n_overlay
        assert TIERS["paper"].n_overlay < TIERS["scale"].n_overlay


class TestSelection:
    def test_default_is_whole_catalog(self):
        assert select_experiments(None) == list(CATALOG)

    def test_subset_keeps_catalog_order(self):
        subset = select_experiments(["table1", "fig7"])
        assert [entry.id for entry in subset] == ["fig7", "table1"]

    def test_unknown_id_lists_valid_choices(self):
        with pytest.raises(ValueError, match="bogus") as excinfo:
            select_experiments(["bogus"])
        assert "fig7" in str(excinfo.value)

    def test_get_experiment(self):
        assert get_experiment("fig7").number == 2
        with pytest.raises(ValueError, match="nope"):
            get_experiment("nope")


class TestExpectation:
    def test_relational_pass_and_fail(self):
        check = Expectation(name="x", kind="ge", left="a", right="b", factor=0.9)
        assert check.evaluate({"a": 90.0, "b": 100.0}, "smoke").status == "pass"
        assert check.evaluate({"a": 89.0, "b": 100.0}, "smoke").status == "fail"

    def test_absolute_le(self):
        check = Expectation(name="x", kind="le", left="a", factor=60.0)
        assert check.evaluate({"a": 59.0}, "smoke").status == "pass"
        assert check.evaluate({"a": 61.0}, "smoke").status == "fail"

    def test_ungated_tier_reports_info(self):
        check = Expectation(
            name="x", kind="ge", left="a", factor=100.0, tiers=("paper", "scale")
        )
        assert check.evaluate({"a": 1.0}, "smoke").status == "info"
        assert check.evaluate({"a": 1.0}, "paper").status == "fail"

    def test_missing_metric_fails_when_gated(self):
        check = Expectation(name="x", kind="ge", left="absent", factor=1.0)
        outcome = check.evaluate({}, "smoke")
        assert outcome.status == "fail"
        assert "missing" in outcome.detail

    def test_note_lands_in_detail(self):
        check = Expectation(name="x", kind="ge", left="a", factor=1.0, note="why")
        assert "[why]" in check.evaluate({"a": 2.0}, "smoke").detail


class TestFlattenExport:
    def test_scalars_become_dotted_metrics(self):
        flat = flatten_export({"a": 1, "nested": {"b": 2.5, "flag": True}})
        assert flat["metrics"] == {"a": 1.0, "nested.b": 2.5, "nested.flag": 1.0}

    def test_point_series_detected(self):
        flat = flatten_export({"curve": [(0, 1.0), (5, 2.0)]})
        assert flat["series"]["curve"] == [[0.0, 1.0], [5.0, 2.0]]
        assert flat["metrics"] == {}

    def test_non_string_key_dicts_land_in_data(self):
        flat = flatten_export({"per_node": {3: 1.0, 7: 2.0}})
        assert flat["data"]["per_node"] == {3: 1.0, 7: 2.0}
        assert flat["metrics"] == {}

    def test_result_keys_dropped(self):
        flat = flatten_export({"result": object(), "inner": {"result": object(), "x": 1}})
        assert flat["metrics"] == {"inner.x": 1.0}
        assert "result" not in flat["data"]
