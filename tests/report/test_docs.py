"""REPRODUCTION.md maintenance: timing-table refresh and drift checking."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.report.catalog import experiment_ids
from repro.report.docs import (
    TIMING_BEGIN,
    TIMING_END,
    refresh_timing_table,
    timing_row,
)
from repro.report.manifest import ExperimentRecord, Manifest

#: The timing table's denominator tracks the registered catalog size.
TOTAL = len(experiment_ids())

REPO_ROOT = Path(__file__).resolve().parents[2]

DOC_TEMPLATE = f"""# Reproduction

Some prose.

{TIMING_BEGIN}
| tier | experiments complete | measured wall-clock |
| --- | --- | --- |
| paper | 22/22 | 3712.0 s |
{TIMING_END}

More prose.
"""


def _manifest(tier="smoke", n_complete=2):
    manifest = Manifest(run_id=tier, tier=tier, seed=1, stability=1, git_sha="x")
    for index in range(n_complete):
        manifest.record(
            ExperimentRecord(
                experiment_id=f"e{index}",
                status="complete",
                export=f"e{index}.json",
                digest="sha256:" + "0" * 64,
                seeds=[1],
                metrics={},
            )
        )
    return manifest


class TestRefreshTimingTable:
    def test_adds_row_for_new_tier_and_keeps_others(self, tmp_path):
        doc = tmp_path / "REPRODUCTION.md"
        doc.write_text(DOC_TEMPLATE)
        changed = refresh_timing_table(doc, _manifest(), {"total_s": 31.5})
        assert changed
        text = doc.read_text()
        assert f"| smoke | 2/{TOTAL} | 31.5 s |" in text
        assert "| paper | 22/22 | 3712.0 s |" in text
        # Tier order follows TIER_NAMES regardless of insertion order.
        assert text.index("| smoke |") < text.index("| paper |")
        assert text.startswith("# Reproduction")
        assert text.rstrip().endswith("More prose.")

    def test_replaces_existing_row(self, tmp_path):
        doc = tmp_path / "REPRODUCTION.md"
        doc.write_text(DOC_TEMPLATE)
        refresh_timing_table(doc, _manifest(tier="paper"), {"total_s": 4000.0})
        text = doc.read_text()
        assert f"| paper | 2/{TOTAL} | 4000.0 s |" in text
        assert "3712.0" not in text

    def test_idempotent(self, tmp_path):
        doc = tmp_path / "REPRODUCTION.md"
        doc.write_text(DOC_TEMPLATE)
        assert refresh_timing_table(doc, _manifest(), {"total_s": 31.5})
        assert not refresh_timing_table(doc, _manifest(), {"total_s": 31.5})

    def test_missing_markers_raise(self, tmp_path):
        doc = tmp_path / "REPRODUCTION.md"
        doc.write_text("# No markers here\n")
        with pytest.raises(ValueError, match="markers"):
            refresh_timing_table(doc, _manifest(), {})

    def test_missing_total_reports_not_recorded(self):
        assert "not recorded" in timing_row(_manifest(), {})


class TestDriftChecker:
    def test_committed_doc_matches_catalog(self):
        completed = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "check_reproduction_docs.py")],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
