"""Manifest serialization: canonical JSON, digests, roundtrips, sidecars."""

import json

from repro.report.manifest import (
    MANIFEST_NAME,
    TIMING_NAME,
    ExpectationOutcome,
    ExperimentRecord,
    Manifest,
    canonical_json,
    export_digest,
    git_sha,
    load_timing,
    save_timing,
)


class TestCanonicalJson:
    def test_sorted_keys_and_trailing_newline(self):
        text = canonical_json({"b": 1, "a": 2})
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')

    def test_byte_stable_across_insertion_orders(self):
        one = canonical_json({"x": 1, "y": {"b": 2, "a": 3}})
        two = canonical_json({"y": {"a": 3, "b": 2}, "x": 1})
        assert one == two

    def test_digest_format(self):
        digest = export_digest(b"payload")
        assert digest.startswith("sha256:")
        assert len(digest) == len("sha256:") + 64
        assert digest == export_digest(b"payload")
        assert digest != export_digest(b"other")


class TestGitSha:
    def test_repo_sha_or_unknown(self):
        sha = git_sha()
        assert sha == "unknown" or len(sha) == 40

    def test_non_repo_is_unknown(self, tmp_path):
        assert git_sha(tmp_path) == "unknown"


def _record(experiment_id="fig7", status="complete"):
    return ExperimentRecord(
        experiment_id=experiment_id,
        status=status,
        export=f"{experiment_id}.json",
        digest="sha256:" + "0" * 64,
        seeds=[1, 2],
        metrics={"useful_kbps": 474.2},
        expectations=[
            ExpectationOutcome(name="check", status="pass", detail="ok")
        ],
        stability={"useful_kbps": {"mean": 474.2, "std": 1.0, "ci95": 2.0, "n": 2.0}},
    )


class TestManifestRoundtrip:
    def test_save_load_roundtrip(self, tmp_path):
        manifest = Manifest(
            run_id="smoke", tier="smoke", seed=1, stability=2, git_sha="abc"
        )
        manifest.record(_record())
        manifest.record(_record("table1"))
        path = manifest.save(tmp_path)
        assert path.name == MANIFEST_NAME

        loaded = Manifest.load(tmp_path)
        assert loaded is not None
        assert loaded.to_json() == manifest.to_json()
        assert loaded.is_complete("fig7")
        assert loaded.experiments["fig7"].stability["useful_kbps"]["n"] == 2.0

    def test_failed_record_serializes_error(self, tmp_path):
        manifest = Manifest(run_id="r", tier="smoke", seed=1, stability=1, git_sha="x")
        record = ExperimentRecord(
            experiment_id="fig9",
            status="failed",
            export="fig9.json",
            digest="",
            seeds=[1],
            metrics={},
            error="ValueError: boom",
        )
        manifest.record(record)
        manifest.save(tmp_path)
        loaded = Manifest.load(tmp_path)
        assert not loaded.is_complete("fig9")
        assert loaded.experiments["fig9"].error == "ValueError: boom"
        # Empty stability/error fields stay out of the payload entirely.
        payload = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert "stability" not in payload["experiments"]["fig9"]

    def test_load_missing_or_corrupt_is_none(self, tmp_path):
        assert Manifest.load(tmp_path) is None
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        assert Manifest.load(tmp_path) is None

    def test_manifest_bytes_are_deterministic(self, tmp_path):
        manifest = Manifest(run_id="r", tier="smoke", seed=1, stability=1, git_sha="x")
        manifest.record(_record())
        first = (manifest.save(tmp_path)).read_bytes()
        second = (manifest.save(tmp_path)).read_bytes()
        assert first == second


class TestTimingSidecar:
    def test_roundtrip(self, tmp_path):
        save_timing(tmp_path, {"experiments": {"fig7": 1.5}, "total_s": 1.5})
        timing = load_timing(tmp_path)
        assert timing["total_s"] == 1.5
        assert (tmp_path / TIMING_NAME).exists()

    def test_missing_or_corrupt_is_empty(self, tmp_path):
        assert load_timing(tmp_path) == {}
        (tmp_path / TIMING_NAME).write_text("[1, 2")
        assert load_timing(tmp_path) == {}
