"""Report rendering from a synthetic manifest: both formats, all sections."""

from repro.report.catalog import MATRIX_CONDITIONS, MATRIX_SYSTEMS
from repro.report.manifest import ExpectationOutcome, ExperimentRecord, Manifest
from repro.report.render import render_html, render_markdown

TIMING = {"experiments": {"fig7": 1.2, "systems": 4.0}, "total_s": 5.2}


def _manifest(with_systems=True):
    manifest = Manifest(
        run_id="smoke", tier="smoke", seed=1, stability=1, git_sha="abc123"
    )
    manifest.record(
        ExperimentRecord(
            experiment_id="fig7",
            status="complete",
            export="fig7.json",
            digest="sha256:" + "0" * 64,
            seeds=[1],
            metrics={"useful_kbps": 474.2},
            expectations=[
                ExpectationOutcome(name="recovers", status="pass", detail="ok"),
                ExpectationOutcome(name="gated", status="info", detail="scale-gated"),
            ],
        )
    )
    if with_systems:
        metrics = {}
        for index, (system, _) in enumerate(MATRIX_SYSTEMS):
            for condition in MATRIX_CONDITIONS:
                if system == "gossip" and condition == "churn":
                    continue  # gossip has no fail_node; the table shows "-"
                metrics[f"{system}.{condition}.useful_kbps"] = 100.0 + index
        manifest.record(
            ExperimentRecord(
                experiment_id="systems",
                status="complete",
                export="systems.json",
                digest="sha256:" + "1" * 64,
                seeds=[1],
                metrics=metrics,
            )
        )
    manifest.record(
        ExperimentRecord(
            experiment_id="fig9",
            status="failed",
            export="fig9.json",
            digest="",
            seeds=[1],
            metrics={},
            error="RuntimeError: boom",
        )
    )
    return manifest


class TestMarkdown:
    def test_core_sections_present(self):
        text = render_markdown(_manifest(), TIMING)
        assert "# Bullet reproduction report" in text
        assert "## Cross-system comparison" in text
        assert "## Summary" in text
        assert "`fig7`" in text
        assert "474.2" in text
        assert "**PASS** recovers" in text
        assert "**info** gated" in text
        assert "**FAILED**: `RuntimeError: boom`" in text
        assert "| total wall-clock | 5.2 s |" in text

    def test_matrix_row_per_system_with_gap(self):
        # Gossip declares supports_fail_node=False, so its absent churn cell
        # renders as a capability gap rather than a bare dash.
        text = render_markdown(_manifest(), TIMING)
        gossip_row = next(
            line for line in text.splitlines() if line.startswith("| gossip ")
        )
        assert gossip_row.rstrip().endswith("| n/a (capability) |")

    def test_no_systems_record_drops_matrix(self):
        text = render_markdown(_manifest(with_systems=False), TIMING)
        assert "Cross-system comparison" not in text

    def test_stability_column_when_present(self):
        manifest = _manifest(with_systems=False)
        manifest.experiments["fig7"].stability = {
            "useful_kbps": {"mean": 474.0, "std": 2.0, "ci95": 3.5, "n": 3.0}
        }
        text = render_markdown(manifest, TIMING)
        assert "mean ± 95% CI" in text
        assert "474.0 ± 3.5 (n=3)" in text


class TestHtml:
    def test_standalone_document(self):
        html = render_html(_manifest(), TIMING)
        assert html.startswith("<!DOCTYPE html>")
        assert "</html>" in html
        assert "<style>" in html  # no external assets
        assert "Cross-system comparison" in html
        assert "fig7" in html

    def test_escapes_untrusted_text(self):
        manifest = _manifest(with_systems=False)
        manifest.experiments["fig9"].error = "<script>alert(1)</script>"
        html = render_html(manifest, TIMING)
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html

    def test_renders_without_timing(self):
        html = render_html(_manifest(), {})
        assert "total wall-clock" not in html
