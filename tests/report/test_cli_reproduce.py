"""The ``reproduce`` CLI subcommand and the CLI's usage-error ergonomics."""

import json

import pytest

from repro.cli import main
from repro.report.catalog import CATALOG
from repro.report.docs import TIMING_BEGIN, TIMING_END
from repro.report.manifest import Manifest


class TestUsageErrors:
    def test_unknown_experiment_id_exits_2_and_lists_choices(self, capsys):
        code = main(["reproduce", "--only", "bogus"])
        assert code == 2
        err = capsys.readouterr().err
        assert "bogus" in err
        assert "fig7" in err  # valid ids are listed

    def test_unknown_tier_exits_2_via_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["reproduce", "--tier", "warp"])
        assert excinfo.value.code == 2
        assert "smoke" in capsys.readouterr().err

    def test_invalid_config_value_exits_2(self, capsys):
        code = main(["run", "--nodes", "1"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_figure_lists_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["figure", "99"])
        assert excinfo.value.code == 2
        assert "15" in capsys.readouterr().err

    def test_unknown_scenario_lists_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--scenario", "bogus"])
        assert excinfo.value.code == 2
        assert "flash-crowd" in capsys.readouterr().err

    def test_bad_bandwidth_class_param_names_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--param", "bandwidth_class=bogus"])
        message = str(excinfo.value)
        assert "low, medium, high" in message

    def test_stability_floor_exits_2(self, capsys):
        code = main(["reproduce", "--stability", "0"])
        assert code == 2
        assert "stability" in capsys.readouterr().err

    def test_help_mentions_reproduction_doc(self, capsys):
        with pytest.raises(SystemExit):
            main(["reproduce", "--help"])
        assert "REPRODUCTION.md" in capsys.readouterr().out


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["reproduce", "--list"]) == 0
        out = capsys.readouterr().out
        for entry in CATALOG:
            assert entry.id in out


class TestReproduceRun:
    def test_only_subset_end_to_end(self, tmp_path, capsys):
        code = main(
            ["reproduce", "--only", "table1", "--out", str(tmp_path), "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["completed"] == ["table1"]
        results_dir = tmp_path / "smoke"
        assert (results_dir / "table1.json").exists()
        assert (results_dir / "report.md").exists()
        manifest = Manifest.load(results_dir)
        assert manifest.is_complete("table1")

    def test_resume_skips_completed(self, tmp_path, capsys):
        main(["reproduce", "--only", "table1", "--out", str(tmp_path), "--json"])
        capsys.readouterr()
        code = main(
            ["reproduce", "--only", "table1", "--out", str(tmp_path), "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["skipped"] == ["table1"]
        assert payload["completed"] == []

    def test_refresh_docs_updates_tmp_doc(self, tmp_path, capsys, monkeypatch):
        doc = tmp_path / "REPRODUCTION.md"
        doc.write_text(f"intro\n{TIMING_BEGIN}\n{TIMING_END}\n")
        monkeypatch.setattr("repro.cli.DEFAULT_DOC", doc)
        code = main(
            [
                "reproduce", "--only", "table1", "--out", str(tmp_path / "results"),
                "--refresh-docs",
            ]
        )
        assert code == 0
        assert "| smoke | 1/" in doc.read_text()

    def test_figure_15_runs_from_cli(self, capsys):
        assert main(["figure", "15", "--duration", "5", "--seed", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "bullet_kbps" in json.dumps(payload)
