"""Tests for the deterministic RNG utilities."""

from hypothesis import given, strategies as st

from repro.util.rng import SeededRng, spawn_rng


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(42)
        b = SeededRng(42)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = SeededRng(1)
        b = SeededRng(2)
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_children_are_independent_of_parent_draws(self):
        parent_a = SeededRng(7)
        child_a = parent_a.child("x")
        first = [child_a.random() for _ in range(5)]

        parent_b = SeededRng(7)
        # Consume draws from the parent before spawning the child.
        for _ in range(100):
            parent_b.random()
        child_b = parent_b.child("x")
        second = [child_b.random() for _ in range(5)]
        assert first == second

    def test_named_children_differ(self):
        root = SeededRng(3)
        assert root.child("a").random() != root.child("b").random()

    def test_sample_clamps_to_population(self):
        rng = SeededRng(5)
        population = [1, 2, 3]
        assert sorted(rng.sample(population, 10)) == population

    def test_choice_and_shuffle_are_deterministic(self):
        a, b = SeededRng(9), SeededRng(9)
        items_a, items_b = list(range(20)), list(range(20))
        a.shuffle(items_a)
        b.shuffle(items_b)
        assert items_a == items_b
        assert a.choice(items_a) == b.choice(items_b)

    def test_weighted_choice_respects_zero_weightless_items(self):
        rng = SeededRng(11)
        picks = {rng.weighted_choice(["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"a"}

    def test_coin_extremes(self):
        rng = SeededRng(13)
        assert not any(rng.coin(0.0) for _ in range(20))
        assert all(rng.coin(1.0) for _ in range(20))

    def test_spawn_rng_walks_path(self):
        direct = SeededRng(21).child("a").child("b").random()
        walked = spawn_rng(21, "a", "b").random()
        assert direct == walked

    @given(st.integers(min_value=0, max_value=10**9))
    def test_uniform_within_bounds(self, seed):
        rng = SeededRng(seed)
        value = rng.uniform(10.0, 20.0)
        assert 10.0 <= value <= 20.0

    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=0, max_value=50))
    def test_randint_within_bounds(self, seed, high):
        rng = SeededRng(seed)
        value = rng.randint(0, high)
        assert 0 <= value <= high

    def test_permutation_preserves_elements(self):
        rng = SeededRng(17)
        items = list(range(30))
        assert sorted(rng.permutation(items)) == items
