"""Tests for unit conversion helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.util.units import (
    PACKET_SIZE_BYTES,
    PACKET_SIZE_KBITS,
    bytes_to_kbits,
    kbits_to_bytes,
    kbps_to_packets_per_second,
    packets_to_kbits,
)


class TestUnits:
    def test_packet_size_consistency(self):
        assert PACKET_SIZE_KBITS == pytest.approx(PACKET_SIZE_BYTES * 8 / 1000)

    def test_bytes_kbits_round_trip(self):
        assert kbits_to_bytes(bytes_to_kbits(1500)) == pytest.approx(1500)

    @given(st.floats(min_value=0, max_value=1e9, allow_nan=False))
    def test_round_trip_property(self, n_bytes):
        assert kbits_to_bytes(bytes_to_kbits(n_bytes)) == pytest.approx(n_bytes, rel=1e-9)

    def test_stream_rate_to_packets(self):
        # 600 Kbps with 12 Kbit packets is 50 packets per second.
        assert kbps_to_packets_per_second(600.0) == pytest.approx(50.0)

    def test_packets_to_kbits_inverse(self):
        assert packets_to_kbits(kbps_to_packets_per_second(600.0)) == pytest.approx(600.0)

    def test_zero_packet_size_rejected(self):
        with pytest.raises(ValueError):
            kbps_to_packets_per_second(100.0, packet_kbits=0)
