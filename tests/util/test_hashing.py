"""Tests for hashing helpers used by sketches and Bloom filters."""

import pytest
from hypothesis import given, strategies as st

from repro.util.hashing import (
    DEFAULT_UNIVERSE,
    linear_permutation,
    stable_hash,
    universal_hash_family,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(12345) == stable_hash(12345)
        assert stable_hash("abc", salt=3) == stable_hash("abc", salt=3)

    def test_salt_changes_value(self):
        assert stable_hash(99, salt=0) != stable_hash(99, salt=1)

    @given(st.integers(min_value=0, max_value=2**40))
    def test_output_is_32_bit(self, value):
        assert 0 <= stable_hash(value) < 2**32


class TestLinearPermutation:
    def test_is_bijection_on_small_prime(self):
        universe = 101
        permute = linear_permutation(7, 13, universe)
        outputs = {permute(x) for x in range(universe)}
        assert len(outputs) == universe

    def test_zero_multiplier_coerced(self):
        permute = linear_permutation(0, 5, 101)
        # Must still be injective (a forced to 1).
        assert len({permute(x) for x in range(101)}) == 101

    def test_rejects_trivial_universe(self):
        with pytest.raises(ValueError):
            linear_permutation(3, 4, universe=1)


class TestUniversalHashFamily:
    def test_family_size(self):
        family = universal_hash_family(8, seed=1)
        assert len(family) == 8

    def test_same_seed_same_family(self):
        a = universal_hash_family(4, seed=9)
        b = universal_hash_family(4, seed=9)
        assert [f(123) for f in a] == [f(123) for f in b]

    def test_different_seeds_differ(self):
        a = universal_hash_family(4, seed=1)
        b = universal_hash_family(4, seed=2)
        assert [f(123) for f in a] != [f(123) for f in b]

    def test_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            universal_hash_family(0)

    @given(st.integers(min_value=0, max_value=10**9))
    def test_outputs_within_universe(self, key):
        family = universal_hash_family(5, seed=3)
        for function in family:
            assert 0 <= function(key) < DEFAULT_UNIVERSE
