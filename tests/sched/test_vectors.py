"""Bit-identity property suite for the step engine's numpy batch kernels.

The legacy mode must stay byte-identical to the engine mode, so "close
enough" is not good enough here: every kernel is compared against its
scalar reference with exact float64 equality, under hypothesis-generated
problems designed to hit freezes, saturations, loss events, slow-start
exits and degenerate (zero/inf) inputs.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.network.fairshare import AllocationRequest, max_min_allocation
from repro.sched.vectors import (
    VectorizedMaxMinSolver,
    evolve_idle_rates,
    feedback_rounds,
    max_min_allocation_vectorized,
)
from repro.transport.tfrc import MIN_RATE_KBPS, TfrcFlowState

# ----------------------------------------------------------------- max-min

capacities_strategy = st.lists(
    st.floats(min_value=10.0, max_value=5000.0), min_size=1, max_size=8
)


@st.composite
def allocation_problems(draw):
    capacities = {
        index: value for index, value in enumerate(draw(capacities_strategy))
    }
    n_links = len(capacities)
    n_flows = draw(st.integers(min_value=0, max_value=12))
    requests = []
    for flow in range(n_flows):
        links = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_links),  # may miss the map
                min_size=0,
                max_size=4,
            )
        )
        cap = draw(
            st.one_of(
                st.just(0.0),
                st.just(float("inf")),
                st.floats(min_value=0.1, max_value=3000.0),
            )
        )
        requests.append(AllocationRequest(flow, links, cap))
    return requests, capacities


class TestMaxMinBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(allocation_problems())
    def test_matches_scalar_reference_exactly(self, problem):
        requests, capacities = problem
        scalar = max_min_allocation(requests, capacities)
        vector = max_min_allocation_vectorized(requests, capacities)
        assert vector == scalar  # exact float equality, key by key

    @settings(max_examples=20, deadline=None)
    @given(allocation_problems(), st.integers(min_value=0, max_value=3))
    def test_cached_incidence_stays_exact_across_cap_changes(self, problem, bump):
        # The solver reuses its flattened incidence while the request set is
        # stable; moving caps must not desynchronize it from the reference.
        requests, capacities = problem
        solver = VectorizedMaxMinSolver()
        assert solver(requests, capacities) == max_min_allocation(requests, capacities)
        moved = [
            AllocationRequest(r.flow_key, r.link_indices, r.cap_kbps + bump * 7.5)
            for r in requests
        ]
        assert solver(moved, capacities) == max_min_allocation(moved, capacities)
        if requests:  # empty request sets early-return before building
            assert solver.rebuilds == 1  # same keys + same cap map: no rebuild

    def test_empty_request_set(self):
        assert max_min_allocation_vectorized([], {0: 100.0}) == {}


# ----------------------------------------------------------------- TFRC

def _scalar_state(rate, slow_start, seen_loss, intervals_row, length, current):
    state = TfrcFlowState(rtt_s=0.1)
    state.allowed_rate_kbps = rate
    state._in_slow_start = slow_start
    state.loss_history.intervals = [int(v) for v in intervals_row[:length]]
    state.loss_history._current = int(current)
    state.loss_history._seen_loss = seen_loss
    return state


@st.composite
def tfrc_flows(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    rates, slow_start, seen_loss, lengths, currents = [], [], [], [], []
    intervals = np.zeros((n, 8), dtype=np.float64)
    received, lost, chunks = [], [], []
    for row in range(n):
        ss = draw(st.booleans())
        length = 0 if ss else draw(st.integers(min_value=0, max_value=8))
        seen = (length > 0) or (not ss and draw(st.booleans()))
        for column in range(length):
            intervals[row, column] = draw(st.integers(min_value=1, max_value=500))
        rates.append(draw(st.floats(min_value=MIN_RATE_KBPS, max_value=5000.0)))
        slow_start.append(ss)
        seen_loss.append(seen)
        lengths.append(length)
        currents.append(draw(st.integers(min_value=0, max_value=400)))
        received.append(draw(st.integers(min_value=0, max_value=200)))
        lost.append(draw(st.integers(min_value=0, max_value=20)))
        chunks.append(draw(st.integers(min_value=1, max_value=5)))
    return {
        "rates": np.array(rates, dtype=np.float64),
        "slow_start": np.array(slow_start, dtype=bool),
        "seen_loss": np.array(seen_loss, dtype=bool),
        "intervals": intervals,
        "lengths": np.array(lengths, dtype=np.int64),
        "currents": np.array(currents, dtype=np.int64),
        "received": np.array(received, dtype=np.int64),
        "lost": np.array(lost, dtype=np.int64),
        "chunks": np.array(chunks, dtype=np.int64),
    }


class TestFeedbackRoundsBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(tfrc_flows())
    def test_matches_scalar_chunk_loop_exactly(self, flows):
        n = len(flows["rates"])
        states = [
            _scalar_state(
                flows["rates"][i],
                bool(flows["slow_start"][i]),
                bool(flows["seen_loss"][i]),
                flows["intervals"][i],
                int(flows["lengths"][i]),
                int(flows["currents"][i]),
            )
            for i in range(n)
        ]
        # Scalar reference: split the step's packets into ``chunks`` feedback
        # rounds, larger remainders first (the // and % split Flow.deliver
        # uses), and feed each round to on_feedback.
        for i, state in enumerate(states):
            chunks = int(flows["chunks"][i])
            base_r, rem_r = divmod(int(flows["received"][i]), chunks)
            base_l, rem_l = divmod(int(flows["lost"][i]), chunks)
            for round_index in range(chunks):
                state.on_feedback(
                    base_r + (1 if round_index < rem_r else 0),
                    base_l + (1 if round_index < rem_l else 0),
                )

        intervals = flows["intervals"].copy()
        rates, slow_start, seen_loss, lengths, current, dirty = feedback_rounds(
            flows["rates"].copy(),
            flows["slow_start"].copy(),
            flows["seen_loss"].copy(),
            intervals,
            flows["lengths"].copy(),
            flows["currents"].copy(),
            flows["received"],
            flows["lost"],
            flows["chunks"],
            np.full(n, 0.1, dtype=np.float64),
            np.full(n, states[0].packet_size_bytes, dtype=np.float64),
            MIN_RATE_KBPS,
        )
        for i, state in enumerate(states):
            assert rates[i] == state.allowed_rate_kbps, f"flow {i} rate"
            assert bool(slow_start[i]) == state.in_slow_start
            assert bool(seen_loss[i]) == state.loss_history._seen_loss
            assert int(current[i]) == state.loss_history._current
            history = state.loss_history.intervals
            assert int(lengths[i]) == len(history)
            assert intervals[i, : len(history)].tolist() == [float(v) for v in history]
            if dirty[i]:
                assert int(flows["lost"][i]) > 0


class TestIdleEvolutionBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(tfrc_flows())
    def test_matches_scalar_zero_feedback_loop_exactly(self, flows):
        n = len(flows["rates"])
        states = [
            _scalar_state(
                flows["rates"][i],
                bool(flows["slow_start"][i]),
                bool(flows["seen_loss"][i]),
                flows["intervals"][i],
                int(flows["lengths"][i]),
                int(flows["currents"][i]),
            )
            for i in range(n)
        ]
        targets = np.array(
            [state.equation_rate_kbps() for state in states], dtype=np.float64
        )
        for i, state in enumerate(states):
            for _ in range(int(flows["chunks"][i])):
                state.on_feedback(0, 0)
        evolved = evolve_idle_rates(
            flows["rates"],
            flows["slow_start"],
            flows["chunks"],
            targets,
            MIN_RATE_KBPS,
            0.25,
        )
        for i, state in enumerate(states):
            assert evolved[i] == state.allowed_rate_kbps, f"flow {i} rate"

    def test_slow_start_doubling_is_exact_power_of_two(self):
        rates = np.array([MIN_RATE_KBPS], dtype=np.float64)
        evolved = evolve_idle_rates(
            rates,
            np.array([True]),
            np.array([10], dtype=np.int64),
            np.array([np.inf]),
            MIN_RATE_KBPS,
            0.25,
        )
        assert evolved[0] == MIN_RATE_KBPS * 1024.0
