"""Unit tests for the lazy-heap wakeup index behind the step engine."""

from repro.sched.wakeups import WakeupQueue


class TestArming:
    def test_arm_and_pop_due(self):
        queue = WakeupQueue()
        queue.arm("a", 5.0)
        queue.arm("b", 2.0)
        queue.arm("c", 9.0)
        assert queue.pop_due(5.0) == ["b", "a"]
        assert queue.pop_due(5.0) == []
        assert queue.pop_due(9.0) == ["c"]

    def test_rearm_replaces_deadline(self):
        queue = WakeupQueue()
        queue.arm("a", 2.0)
        queue.arm("a", 8.0)
        assert queue.deadline("a") == 8.0
        assert queue.pop_due(5.0) == []
        assert queue.pop_due(8.0) == ["a"]

    def test_rearm_can_move_deadline_earlier(self):
        queue = WakeupQueue()
        queue.arm("a", 8.0)
        queue.arm("a", 2.0)
        assert queue.pop_due(2.0) == ["a"]
        # The stale 8.0 entry must not resurface later.
        assert queue.pop_due(10.0) == []

    def test_rearm_at_same_deadline_is_noop(self):
        queue = WakeupQueue()
        queue.arm("a", 4.0)
        armed_before = queue.armed_total
        queue.arm("a", 4.0)
        assert queue.armed_total == armed_before
        assert queue.pop_due(4.0) == ["a"]

    def test_disarm_cancels_pending_wakeup(self):
        queue = WakeupQueue()
        queue.arm("a", 3.0)
        queue.disarm("a")
        assert queue.pop_due(10.0) == []
        assert queue.deadline("a") is None

    def test_disarm_unknown_key_is_noop(self):
        queue = WakeupQueue()
        queue.disarm("ghost")
        assert len(queue) == 0


class TestQueries:
    def test_next_time_skips_stale_entries(self):
        queue = WakeupQueue()
        queue.arm("a", 2.0)
        queue.arm("a", 7.0)
        queue.arm("b", 5.0)
        assert queue.next_time() == 5.0

    def test_next_time_none_when_idle(self):
        queue = WakeupQueue()
        assert queue.next_time() is None
        queue.arm("a", 1.0)
        queue.pop_due(1.0)
        assert queue.next_time() is None

    def test_epsilon_due_check(self):
        # A deadline a hair past ``now`` (within 1e-12) still counts as due,
        # matching PeriodicTimer.fire / EventScheduler.run_due.
        queue = WakeupQueue()
        queue.arm("a", 5.0 + 5e-13)
        assert queue.pop_due(5.0) == ["a"]

    def test_len_and_contains_track_live_keys(self):
        queue = WakeupQueue()
        queue.arm("a", 1.0)
        queue.arm("b", 2.0)
        assert len(queue) == 2 and "a" in queue
        queue.pop_due(1.0)
        assert len(queue) == 1 and "a" not in queue and "b" in queue

    def test_counters(self):
        queue = WakeupQueue()
        queue.arm("a", 1.0)
        queue.arm("b", 2.0)
        queue.arm("b", 3.0)
        queue.pop_due(3.0)
        assert queue.armed_total == 3
        assert queue.fired_total == 2

    def test_tuple_keys(self):
        queue = WakeupQueue()
        queue.arm(("refresh", 7), 1.0)
        queue.arm(("refresh", 8), 1.0)
        assert set(queue.pop_due(1.0)) == {("refresh", 7), ("refresh", 8)}
