"""Unit tests for the StepEngine wakeup coordinator."""

from repro.network.events import PeriodicTimer
from repro.sched.engine import StepEngine


class TestArmTimer:
    def test_unarmed_timer_is_primed_like_a_polling_loop(self):
        # A polling loop calling fire() every step from t=0 lazily arms an
        # unarmed timer at 0 + period.  arm_timer must land the wakeup there,
        # not at attach-time + period.
        engine = StepEngine()
        timer = PeriodicTimer(5.0)
        engine.arm_timer("t", timer, 0.0)
        assert engine.queue.deadline("t") == 5.0
        # The primed timer then actually fires at the wakeup.
        assert "t" in engine.due_set(5.0)
        assert timer.fire(5.0)

    def test_attach_after_start_does_not_slip_a_period(self):
        # Regression guard: arming at attach-time + period (instead of
        # priming) made the first firing one full period late.
        engine = StepEngine()
        timer = PeriodicTimer(5.0)
        timer.fire(0.0)  # lazy-armed to 5.0 by the polling loop
        engine.arm_timer("t", timer, 3.0)
        assert engine.queue.deadline("t") == 5.0

    def test_start_at_in_the_past_wakes_immediately(self):
        # A joiner's staggered start_at can predate its attach time; the
        # wakeup must be already-due so the catch-up fire happens on the
        # very next step, exactly as the legacy poll would.
        engine = StepEngine()
        timer = PeriodicTimer(10.0, start_at=2.0)
        engine.arm_timer("t", timer, 6.0)
        assert engine.queue.deadline("t") == 2.0
        assert "t" in engine.due_set(6.0)
        assert timer.fire(6.0)

    def test_rearm_after_fire_tracks_schedule(self):
        engine = StepEngine()
        timer = PeriodicTimer(4.0)
        engine.arm_timer("t", timer, 0.0)
        engine.due_set(4.0)
        assert timer.fire(4.0)
        engine.arm_timer("t", timer, 4.0)
        assert engine.queue.deadline("t") == 8.0


class TestDueSet:
    def test_cached_within_one_timestamp(self):
        # Several subsystems consult due_set in one step; all must see the
        # same snapshot even though the underlying pop drains the queue.
        engine = StepEngine()
        engine.arm("a", 2.0)
        first = engine.due_set(2.0)
        second = engine.due_set(2.0)
        assert first == {"a"}
        assert second == {"a"}
        assert engine.steps == 1

    def test_new_timestamp_pops_fresh(self):
        engine = StepEngine()
        engine.arm("a", 1.0)
        engine.arm("b", 2.0)
        assert engine.due_set(1.0) == {"a"}
        assert engine.due_set(2.0) == {"b"}
        assert engine.steps == 2

    def test_disarm_suppresses_wakeup(self):
        engine = StepEngine()
        engine.arm("a", 1.0)
        engine.disarm("a")
        assert engine.due_set(1.0) == set()


class TestCounters:
    def test_note_skipped_accumulates(self):
        engine = StepEngine()
        engine.note_skipped()
        engine.note_skipped(41)
        assert engine.skipped == 42

    def test_describe_reports_queue_and_step_state(self):
        engine = StepEngine()
        timer = PeriodicTimer(3.0)
        engine.arm_timer("t", timer, 0.0)
        engine.arm("x", 1.0)
        engine.due_set(1.0)
        engine.note_skipped(5)
        described = engine.describe()
        assert described["steps"] == 1
        assert described["armed"] == 1  # "t" still pending
        assert described["wakeups_armed_total"] == 2
        assert described["wakeups_fired_total"] == 1
        assert described["skipped"] == 5
